#include "core/algorithm1_literal.h"

#include "core/key_equivalence.h"
#include "relation/weak_instance.h"
#include "tableau/chase.h"

namespace ird {

Result<Tableau> RunAlgorithm1Literal(const DatabaseState& state,
                                     Algorithm1Stats* stats) {
  IRD_CHECK_MSG(IsKeyEquivalent(state.scheme()),
                "Algorithm 1 requires a key-equivalent scheme");
  Tableau t = StateTableau(state);
  std::vector<std::pair<size_t, AttributeSet>> keys =
      state.scheme().AllKeys();

  // Step (1): fixpoint over pairs of rows agreeing on a key whose constant
  // components differ as sets.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t u = 0; u < t.row_count() && !changed; ++u) {
      AttributeSet cu = t.ConstantColumns(u);
      for (size_t v = 0; v < t.row_count() && !changed; ++v) {
        if (u == v) continue;
        AttributeSet cv = t.ConstantColumns(v);
        for (const auto& [rel, key] : keys) {
          if (!key.IsSubsetOf(cu) || !key.IsSubsetOf(cv)) continue;
          bool agree = true;
          key.ForEach([&](AttributeId a) {
            if (agree &&
                t.ValueOf(t.Cell(u, a)) != t.ValueOf(t.Cell(v, a))) {
              agree = false;
            }
          });
          if (!agree) continue;
          if (cu == cv) {
            // The paper's loop skips identical constant sets (on its
            // consistent-state precondition they must be duplicates);
            // gracefully detect the inconsistent case instead.
            bool identical = true;
            cu.ForEach([&](AttributeId a) {
              if (identical &&
                  t.ValueOf(t.Cell(u, a)) != t.ValueOf(t.Cell(v, a))) {
                identical = false;
              }
            });
            if (!identical) {
              return Inconsistent(
                  "rows agreeing on a key clash on a constant");
            }
            continue;
          }
          // Case (1): Cv ⊆ Cu — equate v's components to u's constants.
          // Case (2): incomparable — v picks up u's constants where u is
          // constant. (Cu ⊆ Cv is case (1) with roles swapped; the outer
          // loop visits that orientation too.)
          if (!cu.IsSubsetOf(cv)) {
            if (stats != nullptr) {
              if (cv.IsSubsetOf(cu)) {
                ++stats->case1;
              } else {
                ++stats->case2;
              }
            }
            bool consistent = true;
            cu.ForEach([&](AttributeId a) {
              if (consistent && !t.Equate(t.Cell(v, a), t.Cell(u, a))) {
                consistent = false;
              }
            });
            if (!consistent) {
              return Inconsistent(
                  "rows agreeing on a key clash on a constant");
            }
            changed = true;
            break;
          }
        }
      }
    }
  }

  // Step (2): eliminate duplicate rows with identical constant components.
  size_t removed = MinimizeByConstantSubsumption(&t);
  if (stats != nullptr) stats->duplicates_removed = removed;
  return t;
}

}  // namespace ird
