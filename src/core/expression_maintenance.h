// The §3.2 machinery behind Theorem 3.2, verbatim: constraint enforcement
// for key-equivalent schemes through *predetermined relational expressions*
// on the raw state — no auxiliary index at all.
//
// For a key value t[K], the (unique) total tuple of the representative
// instance embedding it is found by evaluating the single-tuple conjunctive
// selections σ_{K='k'}(E_i) over the joins E_i of lossless subsets covering
// K, and taking the result of the greatest expression that returned a tuple
// (greater = defined on a superset of attributes; §3.2 proves the greatest
// nonempty one exists on consistent states). Algorithm 2 then runs
// unchanged with this lookup in place of the representative-instance probe.
//
// This module exists for fidelity and for the E3/E2 ablations; the indexed
// maintainers in key_equivalent_maintainer.h are the production engines.

#ifndef IRD_CORE_EXPRESSION_MAINTENANCE_H_
#define IRD_CORE_EXPRESSION_MAINTENANCE_H_

#include <optional>
#include <vector>

#include "core/key_equivalent_maintainer.h"
#include "relation/database_state.h"

namespace ird {

// The precompiled lookup plans for every key of a key-equivalent (sub)
// scheme: per key, the lossless subsets covering it, largest-first.
class ExpressionLookupPlan {
 public:
  // `pool` empty = all of R. The pool must be key-equivalent.
  static ExpressionLookupPlan Build(const DatabaseScheme& scheme,
                                    std::vector<size_t> pool = {});

  // The total tuple embedding `key_values` (a tuple on exactly `key`), or
  // nullopt if the representative instance has none. kInconsistent if the
  // state itself is locally inconsistent (a selection returned two tuples).
  Result<std::optional<PartialTuple>> LookupTotalTuple(
      const DatabaseState& state, const AttributeSet& key,
      const PartialTuple& key_values) const;

  const std::vector<size_t>& pool() const { return pool_; }
  // Distinct keys of the pool (lookup targets).
  const std::vector<AttributeSet>& keys() const { return keys_; }
  // Number of lossless expressions precompiled for keys()[k].
  size_t ExpressionCount(size_t k) const { return subsets_[k].size(); }

 private:
  std::vector<size_t> pool_;
  std::vector<AttributeSet> keys_;
  // Per key: lossless subsets covering it, sorted by decreasing attribute
  // union (so the first nonempty evaluation is the greatest).
  std::vector<std::vector<std::vector<size_t>>> subsets_;
};

// Algorithm 2 with the §3.2 expression lookup: decides whether state ∪
// {tuple on scheme[rel]} is consistent. The state must be consistent.
// Returns the extended tuple q on yes, kInconsistent on no.
Result<PartialTuple> CheckInsertByExpressions(
    const DatabaseScheme& scheme, const ExpressionLookupPlan& plan,
    const DatabaseState& state, size_t rel, const PartialTuple& tuple,
    MaintenanceStats* stats = nullptr);

}  // namespace ird

#endif  // IRD_CORE_EXPRESSION_MAINTENANCE_H_
