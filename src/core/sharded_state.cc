#include "core/sharded_state.h"

#include "base/mutex.h"
#include "core/split.h"
#include "engine/scheme_analysis.h"
#include "obs/obs.h"

namespace ird {

namespace {

void CollectBaseRelations(const Expression& expr, std::vector<size_t>* out) {
  if (expr.kind() == Expression::Kind::kBase) {
    out->push_back(expr.relation_index());
    return;
  }
  for (const ExprPtr& child : expr.children()) {
    CollectBaseRelations(*child, out);
  }
}

}  // namespace

Result<ShardedState> ShardedState::Create(DatabaseState state,
                                          bool verify_consistency) {
  // One analysis serves recognition and every per-block split test; the
  // scheme is copied out of it before the analysis dies.
  SchemeAnalysis analysis(state.scheme());
  RecognitionResult recognition = RecognizeIndependenceReducible(analysis);
  if (!recognition.accepted) {
    return FailedPrecondition(
        "scheme is not independence-reducible: " +
        recognition.violation->ToString(*recognition.induced));
  }
  ShardedState sharded;
  sharded.scheme_ = state.scheme();
  sharded.recognition_ = std::move(recognition);
  sharded.rel_to_block_.assign(state.scheme().size(), 0);
  IRD_COUNT_ADD(shard.blocks, sharded.recognition_.partition.size());
  for (size_t b = 0; b < sharded.recognition_.partition.size(); ++b) {
    const std::vector<size_t>& pool = sharded.recognition_.partition[b];
    for (size_t rel : pool) {
      sharded.rel_to_block_[rel] = b;
    }
    Result<BlockShard> shard = BlockShard::Build(
        state, pool, IsSplitFree(analysis, pool), verify_consistency);
    if (!shard.ok()) return shard.status();
    sharded.shards_.push_back(std::move(shard).value());
  }
  // Warm the lazy FD caches (the scheme's and the induced scheme's) while
  // construction is still single-threaded: plan compilation under
  // concurrent TotalProjection readers calls key_dependencies() on both,
  // and the first call mutates the mutable cache members.
  (void)sharded.scheme_.key_dependencies();
  (void)sharded.recognition_.induced->key_dependencies();
  return sharded;
}

bool ShardedState::AllShardsSplitFree() const {
  for (const BlockShard& shard : shards_) {
    if (!shard.split_free()) return false;
  }
  return true;
}

size_t ShardedState::TupleCount() const {
  size_t n = 0;
  for (const BlockShard& shard : shards_) {
    n += shard.TupleCount();
  }
  return n;
}

DatabaseState ShardedState::Materialize() const {
  DatabaseState out(scheme_);
  for (const BlockShard& shard : shards_) {
    for (size_t rel : shard.pool()) {
      out.SetRelation(rel, shard.substate().relation(rel));
    }
  }
  return out;
}

ExprPtr ShardedState::PlanFor(const AttributeSet& x) {
  {
    MutexLock lock(*plans_mu_);
    auto it = plans_.find(x);
    if (it != plans_.end()) return it->second;
  }
  // Compile outside the lock so concurrent readers are not serialized
  // behind plan compilation; emplace hands a losing racer the winner's
  // (identical) plan.
  ExprPtr plan = BuildBoundedProjectionExpr(scheme_, recognition_, x);
  MutexLock lock(*plans_mu_);
  return plans_.emplace(x, std::move(plan)).first->second;
}

PartialRelation ShardedState::TotalProjection(const AttributeSet& x) {
  IRD_SPAN("shard.query");
  ExprPtr plan = PlanFor(x);
  if (plan == nullptr) return PartialRelation(x);

  // Route the plan: which shards do its base relations live in?
  std::vector<size_t> bases;
  CollectBaseRelations(*plan, &bases);
  std::vector<bool> touched(shards_.size(), false);
  size_t shard_fanout = 0;
  for (size_t rel : bases) {
    size_t b = rel_to_block_[rel];
    if (!touched[b]) {
      touched[b] = true;
      ++shard_fanout;
    }
  }
  if (shard_fanout <= 1) {
    // Block-local read: evaluate against the owning shard alone. The plan
    // only dereferences its base relations, so no other shard's tuples can
    // influence the answer.
    const DatabaseState& local =
        bases.empty() ? shards_[0].substate()
                      : shards_[rel_to_block_[bases[0]]].substate();
    return Evaluate(*plan, local);
  }
  // Cross-block read: fan out to exactly the shards the plan references
  // and evaluate against their merged view.
  IRD_COUNT(shard.cross_block_queries);
  DatabaseState merged(scheme_);
  for (size_t b = 0; b < shards_.size(); ++b) {
    if (!touched[b]) continue;
    for (size_t rel : shards_[b].pool()) {
      merged.SetRelation(rel, shards_[b].substate().relation(rel));
    }
  }
  return Evaluate(*plan, merged);
}

}  // namespace ird
