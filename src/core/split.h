// Split keys and split-free schemes (paper §3.3). A key K is split in some
// Si+ if a partial computation of Si+ (Algorithm 3) covers K without any
// scheme in the computation containing K — the structural obstruction to
// constant-time maintainability (Corollary 3.3: a key-equivalent scheme is
// ctm iff split-free).
//
// Two implementations:
//  * IsKeySplit — the efficient test of Lemma 3.8 (polynomial): K is split
//    iff some scheme not containing K reaches, via the key dependencies of
//    the schemes not containing K, a closure that covers K. The
//    SchemeAnalysis overloads run the W-cover closures through the shared
//    memoized engines and cache verdicts per (pool, key).
//  * IsKeySplitByDefinition — exhaustive search over partial computations
//    of the closures (exponential; for cross-validation on small schemes).
//    Scheme-only on purpose: it computes no FD closures and the oracle
//    layer cross-checks against it, so it must stay context-free.

#ifndef IRD_CORE_SPLIT_H_
#define IRD_CORE_SPLIT_H_

#include <vector>

#include "base/attribute_set.h"
#include "engine/scheme_analysis.h"
#include "schema/database_scheme.h"

namespace ird {

// Lemma 3.8: K is split in some Ri+ iff, with W = {Rp : K ⊄ Rp} and G the
// key dependencies embedded in W, some Wi ∈ W has K ⊆ Closure_G(Wi).
// `pool` restricts R to a subscheme (empty = all); the scheme (sub)set must
// be key-equivalent for the characterization to be meaningful.
bool IsKeySplit(const DatabaseScheme& scheme, const AttributeSet& key,
                const std::vector<size_t>& pool = {});
bool IsKeySplit(SchemeAnalysis& analysis, const AttributeSet& key,
                const std::vector<size_t>& pool = {});

// The definitional test restricted to computations of one closure Si+
// (paper: "K is split in Si+"): explores every reachable closure state of
// start+ and reports whether any applicable step completes K with a scheme
// not containing K. Exponential; guarded at 16 pool schemes.
bool IsKeySplitInClosureOf(const DatabaseScheme& scheme,
                           const AttributeSet& key, size_t start,
                           const std::vector<size_t>& pool = {});

// The definitional test over every Si+ (K is split, full stop).
bool IsKeySplitByDefinition(const DatabaseScheme& scheme,
                            const AttributeSet& key,
                            const std::vector<size_t>& pool = {});

// Keys of the pool's schemes that are split (deduplicated).
std::vector<AttributeSet> SplitKeys(const DatabaseScheme& scheme,
                                    const std::vector<size_t>& pool = {});
// Engine-backed flavor: cached per pool in the analysis; the returned
// reference is valid until the scheme's revision changes.
const std::vector<AttributeSet>& SplitKeys(SchemeAnalysis& analysis,
                                           const std::vector<size_t>& pool =
                                               {});

// True iff no key of the (sub)scheme is split (paper §3.3 "split-free").
bool IsSplitFree(const DatabaseScheme& scheme,
                 const std::vector<size_t>& pool = {});
bool IsSplitFree(SchemeAnalysis& analysis,
                 const std::vector<size_t>& pool = {});

}  // namespace ird

#endif  // IRD_CORE_SPLIT_H_
