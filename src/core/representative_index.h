// Algorithm 1 (paper §3.1) as an incremental engine: the representative
// instance of a consistent state on a key-equivalent database scheme,
// maintained as a set of partial tuples ("rows" = the constant components of
// the chased tableau's rows; the ndv's are implicit and all distinct, per
// Corollary 3.1(a)) with a hash index per key.
//
// Invariants at rest (the paper's loop-termination conditions):
//   * no two rows agree on a key (Lemma 3.2(c) + step (2) deduplication);
//   * every row's constant component is derivable by a join of a lossless
//     subset of S (Lemma 3.2(b)).

#ifndef IRD_CORE_REPRESENTATIVE_INDEX_H_
#define IRD_CORE_REPRESENTATIVE_INDEX_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "relation/database_state.h"

namespace ird {

class RepresentativeIndex {
 public:
  // Builds the representative instance of `state`, which must live on a
  // key-equivalent (sub)scheme. `pool` restricts to a block of R (empty =
  // all relations); keys and tuples outside the pool are ignored — this is
  // how Section 4 runs Algorithm 1 per partition block. Fails with
  // kInconsistent when the substate has no weak instance.
  static Result<RepresentativeIndex> Build(const DatabaseState& state,
                                           std::vector<size_t> pool = {});

  // All live rows (total tuples of the representative instance restricted
  // to their constant columns).
  std::vector<const PartialTuple*> Rows() const;

  // The unique row total on `key` with the given key values, if any.
  // `key_values` must be a tuple on exactly `key`. Uniqueness is Lemma
  // 3.2(c). O(1) expected.
  const PartialTuple* Lookup(const AttributeSet& key,
                             const PartialTuple& key_values) const;

  // Inserts one more tuple of relation `rel` and re-establishes the
  // invariants (the incremental form of Algorithm 1's while loop). Fails
  // with kInconsistent if the enlarged state has no weak instance; the
  // index is left unusable in that case (rebuild to recover).
  Status InsertTuple(size_t rel, const PartialTuple& tuple);

  // The X-total tuples of the representative instance, deduplicated — the
  // ground-truth [X] for the block (paper §2.5). Subsumed rows contribute
  // nothing extra, so scanning live rows suffices.
  PartialRelation TotalProjection(const AttributeSet& x) const;

  // Number of live rows.
  size_t RowCount() const;

 private:
  RepresentativeIndex() = default;

  // Key of the per-key hash index: which key, then the values on it.
  struct KeySlot {
    size_t key_ordinal;  // index into keys_
    size_t row;          // row id
  };

  size_t AddRow(PartialTuple tuple);
  Status MergeInto(size_t target, size_t victim);
  void IndexRow(size_t row);
  void UnindexRow(size_t row);
  Status Settle(size_t row);  // re-merge until invariants hold

  // Distinct keys of the pool's relations.
  std::vector<AttributeSet> keys_;
  std::vector<PartialTuple> rows_;
  std::vector<bool> alive_;
  // (key ordinal, key-values hash) -> row ids (collision chains verified).
  std::unordered_map<uint64_t, std::vector<size_t>> index_;
};

}  // namespace ird

#endif  // IRD_CORE_REPRESENTATIVE_INDEX_H_
