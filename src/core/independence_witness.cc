#include "core/independence_witness.h"

#include "core/key_equivalence.h"

namespace ird {

Result<DatabaseState> BuildDependenceWitness(const DatabaseScheme& scheme) {
  std::optional<UniquenessViolation> violation =
      FindUniquenessViolation(scheme);
  if (!violation.has_value()) {
    return FailedPrecondition(
        "scheme satisfies the uniqueness condition; no witness exists");
  }
  const size_t i = violation->i;
  const size_t j = violation->j;
  const AttributeSet& key = violation->key;
  AttributeSet target = key;
  target.Add(violation->attribute);

  // The derivation fragments: a partial computation of Ri's closure wrt
  // F - Fj (schemes other than Rj), cut as soon as it covers key ∪ {A}.
  std::vector<size_t> pool;
  for (size_t r = 0; r < scheme.size(); ++r) {
    if (r != j) pool.push_back(r);
  }
  SchemeClosure closure = ComputeSchemeClosure(scheme, i, pool);
  IRD_CHECK_MSG(target.IsSubsetOf(closure.closure),
                "violation witness must be derivable without Rj");
  std::vector<size_t> fragments = {i};
  AttributeSet covered = scheme.relation(i).attrs;
  for (const ClosureStep& step : closure.steps) {
    if (target.IsSubsetOf(covered)) break;
    fragments.push_back(step.scheme_index);
    covered.UnionWith(scheme.relation(step.scheme_index).attrs);
  }
  IRD_CHECK(target.IsSubsetOf(covered));

  // t1: one universal tuple projected onto the fragments. t2 on Rj: agrees
  // with t1 exactly on the key, fresh elsewhere (so it contradicts the
  // derived key dependency on `attribute`).
  auto t1_value = [](AttributeId a) {
    return static_cast<Value>(30000 + a);
  };
  auto t2_value = [&](AttributeId a) {
    return key.Contains(a) ? t1_value(a) : static_cast<Value>(40000 + a);
  };
  DatabaseState state(scheme);
  for (size_t rel : fragments) {
    const AttributeSet& attrs = scheme.relation(rel).attrs;
    std::vector<Value> values;
    attrs.ForEach([&](AttributeId a) { values.push_back(t1_value(a)); });
    state.mutable_relation(rel).AddUnique(
        PartialTuple(attrs, std::move(values)));
  }
  const AttributeSet& rj = scheme.relation(j).attrs;
  std::vector<Value> values;
  rj.ForEach([&](AttributeId a) { values.push_back(t2_value(a)); });
  state.mutable_relation(j).AddUnique(PartialTuple(rj, std::move(values)));
  return state;
}

}  // namespace ird
