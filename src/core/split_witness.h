// The constructive side of Theorem 3.4: for a key-equivalent scheme with a
// split key K, build the paper's adversarial instance (Lemmas 3.5-3.7) —
// a consistent state s = s_l ∪ s'_q and an insert tuple u such that
//   (a) s is consistent                                  (Lemma 3.5/3.7a),
//   (b) s'_q ∪ {u} (without the K-covering fragments) is consistent
//                                                        (Lemma 3.7b),
//   (c) s ∪ {u} is inconsistent                          (Lemma 3.6/3.7c).
// Detecting the inconsistency therefore requires reading the fragments of
// s_l — tuples that share no key value with u — which is exactly what a
// constant-time key-probe procedure cannot do. The witness powers both the
// non-ctm tests and the E2/E6 experiments.

#ifndef IRD_CORE_SPLIT_WITNESS_H_
#define IRD_CORE_SPLIT_WITNESS_H_

#include <vector>

#include "base/status.h"
#include "relation/database_state.h"

namespace ird {

struct SplitWitness {
  // s = s_l ∪ s'_q: the consistent base state.
  DatabaseState state;
  // The relations carrying s_l (the fragments that jointly cover K without
  // containing it) — the tuples a correct rejector must read.
  std::vector<size_t> covering_relations;
  // The insert <rel, u> that makes the state inconsistent.
  size_t insert_rel = 0;
  PartialTuple insert;

  explicit SplitWitness(DatabaseState s) : state(std::move(s)) {}
};

// Builds the witness for `key`, which must be split in the (pool-restricted)
// scheme; `pool` empty = all of R. The pool must be key-equivalent. Fails
// with kFailedPrecondition when the key is not split.
Result<SplitWitness> BuildSplitWitness(const DatabaseScheme& scheme,
                                       const AttributeSet& key,
                                       std::vector<size_t> pool = {});

}  // namespace ird

#endif  // IRD_CORE_SPLIT_WITNESS_H_
