#include "core/key_equivalence.h"

#include <numeric>

namespace ird {

namespace {

std::vector<size_t> FullPool(const DatabaseScheme& scheme) {
  std::vector<size_t> pool(scheme.size());
  std::iota(pool.begin(), pool.end(), 0);
  return pool;
}

}  // namespace

SchemeClosure ComputeSchemeClosure(const DatabaseScheme& scheme, size_t j,
                                   const std::vector<size_t>& pool) {
  IRD_DCHECK(j < scheme.size());
  SchemeClosure out;
  out.closure = scheme.relation(j).attrs;
  std::vector<bool> absorbed(scheme.size(), false);
  absorbed[j] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i : pool) {
      if (absorbed[i]) continue;
      const RelationScheme& r = scheme.relation(i);
      if (r.attrs.IsSubsetOf(out.closure)) {
        // Si ⊆ closure adds nothing; mark to keep the scan short. (The
        // paper's loop condition requires Si ⊄ closure.)
        absorbed[i] = true;
        continue;
      }
      if (r.ContainsKey(out.closure)) {
        out.steps.push_back(ClosureStep{i, out.closure});
        out.closure.UnionWith(r.attrs);
        // Every recorded step strictly grows the closure — partial
        // computations replayed from `steps` terminate on this.
        IRD_DCHECK(out.steps.back().closure_before != out.closure);
        absorbed[i] = true;
        changed = true;
      }
    }
  }
  return out;
}

SchemeClosure ComputeSchemeClosure(const DatabaseScheme& scheme, size_t j) {
  return ComputeSchemeClosure(scheme, j, FullPool(scheme));
}

bool IsKeyEquivalentSubset(const DatabaseScheme& scheme,
                           const std::vector<size_t>& pool) {
  AttributeSet all = scheme.UnionAttrs(pool);
  for (size_t j : pool) {
    if (ComputeSchemeClosure(scheme, j, pool).closure != all) return false;
  }
  return true;
}

bool IsKeyEquivalent(const DatabaseScheme& scheme) {
  return IsKeyEquivalentSubset(scheme, FullPool(scheme));
}

bool IsKeyEquivalent(SchemeAnalysis& analysis) {
  SchemeAnalysis::Cache& cache = analysis.cache();
  if (cache.key_equivalent.has_value()) return *cache.key_equivalent;
  cache.key_equivalent = IsKeyEquivalent(analysis.scheme());
  return *cache.key_equivalent;
}

}  // namespace ird
