#include "core/kep.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "obs/obs.h"

namespace ird {

namespace {

// One recursion of function KEP on `pool` with the pool's own key
// dependencies.
void KepRecurse(SchemeAnalysis& analysis, const std::vector<size_t>& pool,
                std::vector<std::vector<size_t>>* out) {
  const DatabaseScheme& scheme = analysis.scheme();
  // Statement (2): part := { [Ri] }, where [Ri] groups schemes with equal
  // closure wrt the pool's key dependencies.
  IRD_DCHECK(!pool.empty());
  // One KEP round = one recursion on a pool; the recursion tree has at
  // most 2n-1 nodes (leaves are disjoint blocks, internals split >= 2 ways).
  IRD_COUNT(kep.rounds);
  std::map<AttributeSet, std::vector<size_t>> groups;
  for (size_t i : pool) {
    groups[analysis.Closure(pool, scheme.relation(i).attrs)].push_back(i);
  }
#ifndef NDEBUG
  // The groups partition the pool (recursion preserves total size), and
  // each member's scheme is inside its group's closure.
  size_t grouped = 0;
  for (const auto& [closure, block] : groups) {
    grouped += block.size();
    for (size_t i : block) {
      IRD_DCHECK(scheme.relation(i).attrs.IsSubsetOf(closure));
    }
  }
  IRD_DCHECK(grouped == pool.size());
#endif
  // Statement (3): a single block means the pool is key-equivalent (all
  // closures equal forces them to equal the pool's attribute union).
  if (groups.size() == 1) {
    out->push_back(pool);
    return;
  }
  for (auto& [closure, block] : groups) {
    KepRecurse(analysis, block, out);
  }
}

}  // namespace

const std::vector<std::vector<size_t>>& KeyEquivalentPartition(
    SchemeAnalysis& analysis) {
  SchemeAnalysis::Cache& cache = analysis.cache();
  if (cache.kep_partition.has_value()) return *cache.kep_partition;
  IRD_SPAN("kep");
  std::vector<std::vector<size_t>> out;
  // The root pool is the full scheme; its cover is the analysis's shared
  // full-cover engine, so the per-relation closures computed here are the
  // same memo entries IsLossless and the uniqueness probes consult.
  std::vector<size_t> root(analysis.scheme().size());
  std::iota(root.begin(), root.end(), 0);
  KepRecurse(analysis, root, &out);
  for (std::vector<size_t>& block : out) {
    std::sort(block.begin(), block.end());
  }
  std::sort(out.begin(), out.end(),
            [](const std::vector<size_t>& a, const std::vector<size_t>& b) {
              return a.front() < b.front();
            });
  cache.kep_partition = std::move(out);
  return *cache.kep_partition;
}

std::vector<std::vector<size_t>> KeyEquivalentPartition(
    const DatabaseScheme& scheme) {
  SchemeAnalysis analysis(scheme);
  return KeyEquivalentPartition(analysis);
}

}  // namespace ird
