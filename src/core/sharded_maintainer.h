// ShardedMaintainer: constraint enforcement for independence-reducible
// schemes over a ShardedState. Per Theorem 4.2 an insert's verdict depends
// only on the receiving relation's block, so inserts landing on distinct
// shards are validated in parallel over a BatchAnalyzer-style worker pool
// while each shard's stream stays serial in arrival order — which makes
// the batch path's verdicts, final state and counter totals identical at
// any job count (the concurrency battery of tests/sharded_state_test.cc
// asserts this at --jobs 1 vs --jobs 8 under TSan).

#ifndef IRD_CORE_SHARDED_MAINTAINER_H_
#define IRD_CORE_SHARDED_MAINTAINER_H_

#include <memory>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "core/sharded_state.h"
#include "engine/batch.h"

namespace ird {

// One insert of a batch: `tuple` into relation `rel`.
struct InsertOp {
  size_t rel;
  PartialTuple tuple;
};

class ShardedMaintainer {
 public:
  // `state` must live on an independence-reducible scheme (recognition
  // runs inside Create) and be consistent. `jobs` sizes the worker pool
  // for InsertBatch; jobs <= 1 validates every shard on the calling
  // thread. With `verify_consistency`, the initial block substates are
  // chased once (Algorithm 1).
  static Result<ShardedMaintainer> Create(DatabaseState state,
                                          size_t jobs = 1,
                                          bool verify_consistency = true);

  // Routes to the owning shard and validates block-locally (Algorithm 5 on
  // split-free shards, Algorithm 2 on split shards). Returns the
  // block-extended tuple q on yes, kInconsistent on no. Pure.
  Result<PartialTuple> CheckInsert(size_t rel, const PartialTuple& tuple,
                                   MaintenanceStats* stats = nullptr) const;

  // CheckInsert + apply on the owning shard.
  Status Insert(size_t rel, const PartialTuple& tuple);

  // Validates and applies `ops` in arrival order per shard, with distinct
  // shards running concurrently on the pool. Returns one verdict per op,
  // in op order — identical to looping Insert over `ops` serially, at any
  // job count, because no shard ever reads another shard's state.
  // Overlapping calls from different threads are serialized on batch_mu_
  // (the pool's handout state is one-batch-at-a-time); interleaving
  // InsertBatch with plain Insert remains the caller's problem.
  std::vector<Status> InsertBatch(const std::vector<InsertOp>& ops)
      IRD_EXCLUDES(batch_mu_);

  const ShardedState& sharded_state() const { return state_; }

  // Fan-in of the shard substates (see ShardedState::Materialize).
  DatabaseState Materialize() const { return state_.Materialize(); }

  // Cross-shard query path (Theorem 4.1 plans routed through the shards).
  PartialRelation TotalProjection(const AttributeSet& x) {
    return state_.TotalProjection(x);
  }

  // Theorem 5.5: ctm iff every shard is split-free.
  bool IsCtm() const { return state_.AllShardsSplitFree(); }

  size_t jobs() const { return pool_->jobs(); }

 private:
  // The pool exists at every job count — BatchAnalyzer(1) spawns no
  // threads and runs batches inline — so the jobs-1 and jobs-N paths share
  // one code path and one counter profile (InsertStormIdenticalAtJobs1
  // AndJobs8 compares the deltas verbatim).
  explicit ShardedMaintainer(ShardedState state, size_t jobs)
      : state_(std::move(state)),
        pool_(std::make_unique<BatchAnalyzer>(jobs)) {}

  ShardedState state_;
  // Serializes InsertBatch callers: BatchAnalyzer::ForEachIndex is not
  // reentrant, and overlapping batches would interleave two shard
  // handouts. Behind a unique_ptr because the maintainer is move-
  // constructed out of Create. Acquired for the whole batch, so the
  // annotated pool_ below is only ever driven by one batch at a time.
  std::unique_ptr<Mutex> batch_mu_ = std::make_unique<Mutex>();
  std::unique_ptr<BatchAnalyzer> pool_;
};

}  // namespace ird

#endif  // IRD_CORE_SHARDED_MAINTAINER_H_
