#include "core/total_projection.h"

#include <numeric>

#include "tableau/lossless.h"

namespace ird {

namespace {

// The Corollary 3.1(b) expression once the lossless covering subsets are
// known; shared by the scheme-only and engine-backed entry points.
ExprPtr BuildFromSubsets(const DatabaseScheme& scheme,
                         const std::vector<std::vector<size_t>>& subsets,
                         const AttributeSet& x) {
  if (subsets.empty()) return nullptr;
  std::vector<ExprPtr> branches;
  branches.reserve(subsets.size());
  for (const std::vector<size_t>& subset : subsets) {
    std::vector<ExprPtr> bases;
    bases.reserve(subset.size());
    for (size_t i : subset) {
      bases.push_back(Expression::Base(i, scheme.relation(i).attrs));
    }
    branches.push_back(
        Expression::Project(x, Expression::Join(std::move(bases))));
  }
  return Expression::Union(std::move(branches));
}

std::vector<size_t> PoolOrAll(const DatabaseScheme& scheme,
                              const std::vector<size_t>& pool) {
  if (!pool.empty()) return pool;
  std::vector<size_t> all(scheme.size());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

}  // namespace

ExprPtr BuildKeyEquivalentProjectionExpr(const DatabaseScheme& scheme,
                                         const std::vector<size_t>& pool,
                                         const AttributeSet& x) {
  std::vector<size_t> p = PoolOrAll(scheme, pool);
  // Ambient dependencies: the pool's own key dependencies (F_j of the
  // block, or all of F when the pool is all of R).
  FdSet ambient = scheme.KeyDependenciesOf(p);
  return BuildFromSubsets(
      scheme, MinimalLosslessSubsetsCovering(scheme, p, x, ambient), x);
}

ExprPtr BuildKeyEquivalentProjectionExpr(SchemeAnalysis& analysis,
                                         const std::vector<size_t>& pool,
                                         const AttributeSet& x) {
  const DatabaseScheme& scheme = analysis.scheme();
  std::vector<size_t> p = PoolOrAll(scheme, pool);
  const FdSet& ambient = analysis.CoverOf(p);
  return BuildFromSubsets(
      scheme, MinimalLosslessSubsetsCovering(scheme, p, x, ambient), x);
}

namespace {

template <typename BlockExprOf>
ExprPtr BoundedExpr(const RecognitionResult& recognition,
                    const AttributeSet& x, BlockExprOf block_expr_of) {
  IRD_CHECK_MSG(recognition.accepted,
                "bounded projection requires an accepted recognition");
  const DatabaseScheme& induced = *recognition.induced;
  std::vector<size_t> d_pool(induced.size());
  std::iota(d_pool.begin(), d_pool.end(), 0);
  std::vector<std::vector<size_t>> d_subsets =
      MinimalLosslessSubsetsCovering(induced, d_pool, x);
  if (d_subsets.empty()) return nullptr;

  std::vector<ExprPtr> branches;
  for (const std::vector<size_t>& d_subset : d_subsets) {
    // Y_j = D_j ∩ (∪ other D's of the subset ∪ X), Theorem 4.1.
    std::vector<ExprPtr> factors;
    for (size_t j : d_subset) {
      AttributeSet others = x;
      for (size_t j2 : d_subset) {
        if (j2 != j) others.UnionWith(induced.relation(j2).attrs);
      }
      AttributeSet yj = induced.relation(j).attrs.Intersect(others);
      // [Y_j] by the block-level expression (Corollary 3.1(b)). The block
      // itself is lossless and covers Y_j, so this is never null.
      ExprPtr block_expr = block_expr_of(recognition.partition[j], yj);
      IRD_CHECK(block_expr != nullptr);
      factors.push_back(std::move(block_expr));
    }
    branches.push_back(
        Expression::Project(x, Expression::Join(std::move(factors))));
  }
  return Expression::Union(std::move(branches));
}

}  // namespace

ExprPtr BuildBoundedProjectionExpr(const DatabaseScheme& scheme,
                                   const RecognitionResult& recognition,
                                   const AttributeSet& x) {
  return BoundedExpr(recognition, x,
                     [&](const std::vector<size_t>& block,
                         const AttributeSet& yj) {
                       return BuildKeyEquivalentProjectionExpr(scheme, block,
                                                               yj);
                     });
}

ExprPtr BuildBoundedProjectionExpr(SchemeAnalysis& analysis,
                                   const RecognitionResult& recognition,
                                   const AttributeSet& x) {
  return BoundedExpr(recognition, x,
                     [&](const std::vector<size_t>& block,
                         const AttributeSet& yj) {
                       return BuildKeyEquivalentProjectionExpr(analysis,
                                                               block, yj);
                     });
}

Result<PartialRelation> TotalProjection(const DatabaseState& state,
                                        const AttributeSet& x) {
  SchemeAnalysis analysis(state.scheme());
  RecognitionResult recognition = RecognizeIndependenceReducible(analysis);
  if (!recognition.accepted) {
    return FailedPrecondition(
        "scheme is not independence-reducible: " +
        recognition.violation->ToString(*recognition.induced));
  }
  ExprPtr expr = BuildBoundedProjectionExpr(analysis, recognition, x);
  if (expr == nullptr) return PartialRelation(x);
  return Evaluate(*expr, state);
}

PartialRelation TotalProjection(const DatabaseState& state,
                                const RecognitionResult& recognition,
                                const AttributeSet& x) {
  ExprPtr expr = BuildBoundedProjectionExpr(state.scheme(), recognition, x);
  if (expr == nullptr) return PartialRelation(x);
  return Evaluate(*expr, state);
}

}  // namespace ird
