#include "core/total_projection.h"

#include <numeric>

#include "tableau/lossless.h"

namespace ird {

ExprPtr BuildKeyEquivalentProjectionExpr(const DatabaseScheme& scheme,
                                         const std::vector<size_t>& pool,
                                         const AttributeSet& x) {
  std::vector<size_t> p = pool;
  if (p.empty()) {
    p.resize(scheme.size());
    std::iota(p.begin(), p.end(), 0);
  }
  // Ambient dependencies: the pool's own key dependencies (F_j of the
  // block, or all of F when the pool is all of R).
  FdSet ambient = scheme.KeyDependenciesOf(p);
  std::vector<std::vector<size_t>> subsets =
      MinimalLosslessSubsetsCovering(scheme, p, x, ambient);
  if (subsets.empty()) return nullptr;
  std::vector<ExprPtr> branches;
  branches.reserve(subsets.size());
  for (const std::vector<size_t>& subset : subsets) {
    std::vector<ExprPtr> bases;
    bases.reserve(subset.size());
    for (size_t i : subset) {
      bases.push_back(Expression::Base(i, scheme.relation(i).attrs));
    }
    branches.push_back(
        Expression::Project(x, Expression::Join(std::move(bases))));
  }
  return Expression::Union(std::move(branches));
}

ExprPtr BuildBoundedProjectionExpr(const DatabaseScheme& scheme,
                                   const RecognitionResult& recognition,
                                   const AttributeSet& x) {
  IRD_CHECK_MSG(recognition.accepted,
                "bounded projection requires an accepted recognition");
  const DatabaseScheme& induced = *recognition.induced;
  std::vector<size_t> d_pool(induced.size());
  std::iota(d_pool.begin(), d_pool.end(), 0);
  std::vector<std::vector<size_t>> d_subsets =
      MinimalLosslessSubsetsCovering(induced, d_pool, x);
  if (d_subsets.empty()) return nullptr;

  std::vector<ExprPtr> branches;
  for (const std::vector<size_t>& d_subset : d_subsets) {
    // Y_j = D_j ∩ (∪ other D's of the subset ∪ X), Theorem 4.1.
    std::vector<ExprPtr> factors;
    for (size_t j : d_subset) {
      AttributeSet others = x;
      for (size_t j2 : d_subset) {
        if (j2 != j) others.UnionWith(induced.relation(j2).attrs);
      }
      AttributeSet yj = induced.relation(j).attrs.Intersect(others);
      // [Y_j] by the block-level expression (Corollary 3.1(b)). The block
      // itself is lossless and covers Y_j, so this is never null.
      ExprPtr block_expr = BuildKeyEquivalentProjectionExpr(
          scheme, recognition.partition[j], yj);
      IRD_CHECK(block_expr != nullptr);
      factors.push_back(std::move(block_expr));
    }
    branches.push_back(
        Expression::Project(x, Expression::Join(std::move(factors))));
  }
  return Expression::Union(std::move(branches));
}

Result<PartialRelation> TotalProjection(const DatabaseState& state,
                                        const AttributeSet& x) {
  RecognitionResult recognition =
      RecognizeIndependenceReducible(state.scheme());
  if (!recognition.accepted) {
    return FailedPrecondition(
        "scheme is not independence-reducible: " +
        recognition.violation->ToString(*recognition.induced));
  }
  return TotalProjection(state, recognition, x);
}

PartialRelation TotalProjection(const DatabaseState& state,
                                const RecognitionResult& recognition,
                                const AttributeSet& x) {
  ExprPtr expr = BuildBoundedProjectionExpr(state.scheme(), recognition, x);
  if (expr == nullptr) return PartialRelation(x);
  return Evaluate(*expr, state);
}

}  // namespace ird
