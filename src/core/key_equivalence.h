// Key-equivalent database schemes (paper §3): S is key-equivalent wrt its
// embedded key dependencies iff Si+ = ∪S for every Si — every scheme's
// closure reaches the whole universe of the (sub)scheme. Includes
// Algorithm 3, the scheme-level closure computation whose "computations"
// (orders of scheme absorption) underlie the split-freeness definition.

#ifndef IRD_CORE_KEY_EQUIVALENCE_H_
#define IRD_CORE_KEY_EQUIVALENCE_H_

#include <vector>

#include "base/attribute_set.h"
#include "engine/scheme_analysis.h"
#include "schema/database_scheme.h"

namespace ird {

// One step of a computation of Sj+ (Algorithm 3): the scheme chosen in
// statement (2) and the closure value before it was absorbed.
struct ClosureStep {
  size_t scheme_index;
  AttributeSet closure_before;
};

// Result of Algorithm 3 run to completion with a deterministic
// (first-applicable) choice order.
struct SchemeClosure {
  AttributeSet closure;
  std::vector<ClosureStep> steps;
};

// Algorithm 3: closure := Sj; while some Si ⊄ closure has a key inside
// closure, absorb Si. `pool` restricts both the candidate schemes and the
// key dependencies to a subset of R (empty pool = all of R); the paper uses
// this with pool = one block of a partition.
SchemeClosure ComputeSchemeClosure(const DatabaseScheme& scheme, size_t j,
                                   const std::vector<size_t>& pool);

// Convenience: Algorithm 3 over all of R. Equals the attribute closure of
// Rj wrt the key dependencies.
SchemeClosure ComputeSchemeClosure(const DatabaseScheme& scheme, size_t j);

// True iff the subscheme {scheme[i] : i ∈ pool} is key-equivalent wrt the
// key dependencies embedded in its members: every member's closure (wrt the
// pool's own key dependencies) equals the pool's attribute union.
bool IsKeyEquivalentSubset(const DatabaseScheme& scheme,
                           const std::vector<size_t>& pool);

// True iff R itself is key-equivalent wrt F.
bool IsKeyEquivalent(const DatabaseScheme& scheme);

// Cached flavor: Algorithm 3 computes no FD closures (it absorbs whole
// schemes), so only the verdict is memoized in the analysis.
bool IsKeyEquivalent(SchemeAnalysis& analysis);

}  // namespace ird

#endif  // IRD_CORE_KEY_EQUIVALENCE_H_
