#include "core/expression_maintenance.h"

#include <algorithm>
#include <numeric>

#include "algebra/expression.h"
#include "core/key_equivalence.h"
#include "tableau/lossless.h"

namespace ird {

ExpressionLookupPlan ExpressionLookupPlan::Build(const DatabaseScheme& scheme,
                                                 std::vector<size_t> pool) {
  if (pool.empty()) {
    pool.resize(scheme.size());
    std::iota(pool.begin(), pool.end(), 0);
  }
  IRD_CHECK_MSG(IsKeyEquivalentSubset(scheme, pool),
                "ExpressionLookupPlan requires a key-equivalent (sub)scheme");
  ExpressionLookupPlan plan;
  plan.pool_ = pool;
  FdSet ambient = scheme.KeyDependenciesOf(pool);
  for (size_t i : pool) {
    for (const AttributeSet& key : scheme.relation(i).keys) {
      bool known = false;
      for (const AttributeSet& k : plan.keys_) {
        if (k == key) {
          known = true;
          break;
        }
      }
      if (known) continue;
      plan.keys_.push_back(key);
      std::vector<std::vector<size_t>> subsets =
          AllLosslessSubsetsCovering(scheme, pool, key, ambient);
      // Largest attribute union first: the first nonempty selection is the
      // greatest lossless expression of §3.2.
      std::sort(subsets.begin(), subsets.end(),
                [&scheme](const std::vector<size_t>& a,
                          const std::vector<size_t>& b) {
                  return scheme.UnionAttrs(a).Count() >
                         scheme.UnionAttrs(b).Count();
                });
      plan.subsets_.push_back(std::move(subsets));
    }
  }
  return plan;
}

namespace {

// σ_{K='k'}(⋈ subset) with the selection pushed onto every base relation
// and a greedy connected join order (most-selected relation first), so the
// join never materializes an unselected cross product needlessly.
Result<std::optional<PartialTuple>> EvaluateSingleTupleSelection(
    const DatabaseState& state, const std::vector<size_t>& subset,
    const AttributeSet& key, const PartialTuple& key_values) {
  const DatabaseScheme& scheme = state.scheme();
  // Filter each base by the key attributes it sees.
  std::vector<PartialRelation> filtered;
  filtered.reserve(subset.size());
  for (size_t rel : subset) {
    const AttributeSet& attrs = scheme.relation(rel).attrs;
    AttributeSet bound = attrs.Intersect(key);
    PartialRelation out(attrs);
    for (const PartialTuple& t : state.relation(rel).tuples()) {
      if (bound.Empty() || t.AgreesOn(key_values, bound)) {
        out.Add(t);
      }
    }
    filtered.push_back(std::move(out));
  }
  // Greedy connected order: start with the most-constrained relation.
  std::vector<size_t> order;
  std::vector<bool> used(subset.size(), false);
  size_t start = 0;
  size_t best_bound = 0;
  for (size_t i = 0; i < subset.size(); ++i) {
    size_t bound =
        scheme.relation(subset[i]).attrs.Intersect(key).Count();
    if (bound > best_bound) {
      best_bound = bound;
      start = i;
    }
  }
  order.push_back(start);
  used[start] = true;
  AttributeSet prefix = scheme.relation(subset[start]).attrs;
  while (order.size() < subset.size()) {
    bool advanced = false;
    for (size_t i = 0; i < subset.size(); ++i) {
      if (used[i]) continue;
      if (scheme.relation(subset[i]).attrs.Intersects(prefix)) {
        order.push_back(i);
        used[i] = true;
        prefix.UnionWith(scheme.relation(subset[i]).attrs);
        advanced = true;
        break;
      }
    }
    if (!advanced) {
      // Disconnected remainder (possible when the chase-losslessness runs
      // through outside attributes): append arbitrarily.
      for (size_t i = 0; i < subset.size(); ++i) {
        if (!used[i]) {
          order.push_back(i);
          used[i] = true;
          prefix.UnionWith(scheme.relation(subset[i]).attrs);
        }
      }
    }
  }
  PartialRelation acc = filtered[order[0]];
  for (size_t step = 1; step < order.size(); ++step) {
    acc = NaturalJoin(acc, filtered[order[step]]);
    if (acc.empty()) return std::optional<PartialTuple>(std::nullopt);
  }
  // Single-tuple check (σ over a lossless expression on a consistent state
  // returns at most one tuple, §3.2).
  std::optional<PartialTuple> result;
  for (const PartialTuple& t : acc.tuples()) {
    if (!result.has_value()) {
      result = t;
    } else if (*result != t) {
      return Inconsistent(
          "selection over a lossless expression returned two tuples: the "
          "state violates its key dependencies");
    }
  }
  return result;
}

}  // namespace

Result<std::optional<PartialTuple>> ExpressionLookupPlan::LookupTotalTuple(
    const DatabaseState& state, const AttributeSet& key,
    const PartialTuple& key_values) const {
  for (size_t k = 0; k < keys_.size(); ++k) {
    if (keys_[k] != key) continue;
    for (const std::vector<size_t>& subset : subsets_[k]) {
      Result<std::optional<PartialTuple>> result =
          EvaluateSingleTupleSelection(state, subset, key, key_values);
      if (!result.ok()) return result.status();
      if (result->has_value()) return result;  // greatest nonempty wins
    }
    return std::optional<PartialTuple>(std::nullopt);
  }
  IRD_CHECK_MSG(false, "lookup with a key not in the plan");
  return std::optional<PartialTuple>(std::nullopt);
}

Result<PartialTuple> CheckInsertByExpressions(
    const DatabaseScheme& scheme, const ExpressionLookupPlan& plan,
    const DatabaseState& state, size_t rel, const PartialTuple& tuple,
    MaintenanceStats* stats) {
  IRD_CHECK(tuple.attrs() == scheme.relation(rel).attrs);
  const std::vector<AttributeSet>& pool_keys = plan.keys();
  // Algorithm 2, with step (4)'s representative-instance probe replaced by
  // the §3.2 expression lookup.
  std::vector<bool> processed(pool_keys.size(), false);
  std::vector<bool> queued(pool_keys.size(), false);
  std::vector<size_t> unprocessed;
  AttributeSet closure = scheme.relation(rel).attrs;
  for (size_t k = 0; k < pool_keys.size(); ++k) {
    if (pool_keys[k].IsSubsetOf(closure)) {
      unprocessed.push_back(k);
      queued[k] = true;
    }
  }
  PartialTuple q = tuple;
  while (!unprocessed.empty()) {
    size_t k = unprocessed.back();
    unprocessed.pop_back();
    processed[k] = true;
    if (stats != nullptr) ++stats->keys_processed;
    const AttributeSet& key = pool_keys[k];
    PartialTuple key_values = q.Restrict(key);
    Result<std::optional<PartialTuple>> p =
        plan.LookupTotalTuple(state, key, key_values);
    if (!p.ok()) return p.status();
    if (stats != nullptr) ++stats->lookups;
    const PartialTuple& v = p->has_value() ? **p : key_values;
    std::optional<PartialTuple> joined = q.Join(v);
    if (!joined.has_value()) {
      return Inconsistent("inserted tuple contradicts the total tuple on " +
                          scheme.universe().Format(key));
    }
    q = std::move(*joined);
    closure.UnionWith(v.attrs());
    for (size_t k2 = 0; k2 < pool_keys.size(); ++k2) {
      if (!processed[k2] && !queued[k2] &&
          pool_keys[k2].IsSubsetOf(closure)) {
        unprocessed.push_back(k2);
        queued[k2] = true;
      }
    }
  }
  return q;
}

}  // namespace ird
