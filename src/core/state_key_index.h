// StateKeyIndex: hash indexes from key values to tuples of the *raw* state,
// one index per (relation, declared key). This is the access structure
// behind Algorithm 4's single-tuple conjunctive selections σ_Φ(Si): a probe
// returns the unique matching tuple in O(1) expected time, which is what
// makes Algorithm 5 constant-time in the state size.

#ifndef IRD_CORE_STATE_KEY_INDEX_H_
#define IRD_CORE_STATE_KEY_INDEX_H_

#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "relation/database_state.h"

namespace ird {

class StateKeyIndex {
 public:
  // Indexes the relations in `pool` (empty = all) of `state`. Fails with
  // kInconsistent if some relation has two tuples agreeing on a key (a
  // local key violation, so the state cannot be consistent).
  static Result<StateKeyIndex> Build(const DatabaseState& state,
                                     std::vector<size_t> pool = {});

  // Relations covered by this index.
  const std::vector<size_t>& pool() const { return pool_; }

  // True iff `rel` is one of the indexed relations.
  bool Covers(size_t rel) const { return FindRelation(rel) != nullptr; }

  // Number of tuples registered across all (relation, key) indexes, each
  // tuple counted once per declared key of its relation.
  size_t indexed_entries() const { return indexed_entries_; }

  // The unique tuple of relation `rel` agreeing with `tuple` on `key`
  // (which must be a declared key of `rel`; `tuple` must be total on it).
  // Returns nullptr if absent.
  const PartialTuple* Probe(size_t rel, const AttributeSet& key,
                            const PartialTuple& tuple) const;

  // Registers a newly inserted tuple of `rel`. Fails with kInconsistent if
  // a different tuple with equal key values already exists.
  Status AddTuple(size_t rel, const PartialTuple& tuple);

 private:
  struct PerKey {
    AttributeSet key;
    // key-values hash -> tuple copies (collisions verified on probe).
    std::unordered_map<uint64_t, std::vector<PartialTuple>> map;
  };
  struct PerRelation {
    size_t rel = 0;
    std::vector<PerKey> keys;
  };

  const PerRelation* FindRelation(size_t rel) const;

  std::vector<size_t> pool_;
  std::vector<PerRelation> relations_;
  size_t indexed_entries_ = 0;
};

}  // namespace ird

#endif  // IRD_CORE_STATE_KEY_INDEX_H_
