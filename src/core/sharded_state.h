// ShardedState: a database state partitioned along the scheme's
// independence-reducible partition, one BlockShard per block. The router
// maps each relation to the shard that owns it; writes are block-local by
// Theorem 4.2, and cross-block reads (total projection, the QueryEngine
// path) are answered by fanning out to the shards a plan touches and
// merging their views. The single-shard IndependenceReducibleMaintainer
// remains the oracle this engine is differentially compared against
// (oracle routine `maintenance/sharded-vs-single`).

#ifndef IRD_CORE_SHARDED_STATE_H_
#define IRD_CORE_SHARDED_STATE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "algebra/expression.h"
#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "core/block_shard.h"
#include "core/recognition.h"
#include "core/total_projection.h"
#include "relation/database_state.h"

namespace ird {

class ShardedState {
 public:
  // Shards `state` along the independence-reducible partition (recognition
  // runs inside; kFailedPrecondition when the scheme is outside the
  // class). With `verify_consistency`, every block substate is chased once
  // (Algorithm 1) on construction.
  static Result<ShardedState> Create(DatabaseState state,
                                     bool verify_consistency = true);

  const DatabaseScheme& scheme() const { return scheme_; }
  const RecognitionResult& recognition() const { return recognition_; }

  // The router: which shard owns relation `rel`.
  size_t BlockOf(size_t rel) const {
    IRD_CHECK(rel < rel_to_block_.size());
    return rel_to_block_[rel];
  }

  size_t shard_count() const { return shards_.size(); }
  const BlockShard& shard(size_t b) const {
    IRD_CHECK(b < shards_.size());
    return shards_[b];
  }
  BlockShard& mutable_shard(size_t b) {
    IRD_CHECK(b < shards_.size());
    return shards_[b];
  }

  // Theorem 5.5 per shard: every block split-free <=> the scheme is ctm.
  bool AllShardsSplitFree() const;

  // Total tuples across all shards.
  size_t TupleCount() const;

  // Fan-in: reassembles the full database state from the shard substates.
  // Tuple order within each relation is the shard's insertion order, so a
  // sharded and a single-shard engine fed the same insert sequence
  // materialize byte-identical states.
  DatabaseState Materialize() const;

  // The Theorem 4.1 bounded total projection [X], answered through the
  // shards: the cached plan's base relations are collected, and when they
  // all live in one shard the expression is evaluated against that shard's
  // substate alone (no other shard is touched); otherwise the read is a
  // cross-block query (`shard.cross_block_queries`) evaluated against the
  // fan-out/merge of exactly the shards the plan references. Returns the
  // empty relation on X no lossless subset of the induced scheme covers.
  //
  // Safe to call concurrently with other TotalProjection/PlanFor calls:
  // the plan cache is the only state this read path mutates, and it is
  // guarded (the ird_serve cross-request cache will hit exactly this
  // shape). Concurrent with writers (Insert/mutable_shard) it is not.
  PartialRelation TotalProjection(const AttributeSet& x)
      IRD_EXCLUDES(plans_mu_);

  // The cached Theorem 4.1 plan for [X] (nullptr when no lossless subset
  // of the induced scheme covers X) — the QueryEngine-style plan cache.
  ExprPtr PlanFor(const AttributeSet& x) IRD_EXCLUDES(plans_mu_);

 private:
  ShardedState() : scheme_(DatabaseScheme::Create()) {}

  DatabaseScheme scheme_;
  RecognitionResult recognition_;
  std::vector<BlockShard> shards_;
  std::vector<size_t> rel_to_block_;
  // Plan compilation is deterministic, so a losing racer recomputing an
  // entry lands on an equivalent plan; the mutex only protects the map
  // structure itself. Behind a unique_ptr because ShardedState is move-
  // constructed out of Create (a Mutex member would pin it in place).
  std::unique_ptr<Mutex> plans_mu_ = std::make_unique<Mutex>();
  std::unordered_map<AttributeSet, ExprPtr, AttributeSetHash> plans_
      IRD_GUARDED_BY(plans_mu_);
};

}  // namespace ird

#endif  // IRD_CORE_SHARDED_STATE_H_
