// Constraint enforcement for independence-reducible schemes (paper §4.2):
// an insert into relation Rm only needs to be validated against Rm's block
// of the independence-reducible partition — block-local consistency of all
// blocks implies global consistency because the induced scheme D is
// independent. Split-free blocks get the constant-time Algorithm 5; split
// blocks get the algebraic Algorithm 2 (Theorem 4.2, Theorem 5.5).
//
// This is the *single-shard* engine: one merged DatabaseState, per-block
// BlockShard machinery, everything on the calling thread. It is kept as
// the differential oracle for the sharded path (ShardedMaintainer,
// core/sharded_maintainer.h) — see oracle routine
// `maintenance/sharded-vs-single`.

#ifndef IRD_CORE_BLOCK_MAINTAINER_H_
#define IRD_CORE_BLOCK_MAINTAINER_H_

#include <vector>

#include "core/block_shard.h"
#include "core/recognition.h"
#include "relation/database_state.h"

namespace ird {

class IndependenceReducibleMaintainer {
 public:
  // `state` must live on an independence-reducible scheme (recognition runs
  // inside) and be consistent. With `verify_consistency`, the initial state
  // is chased once per block (Algorithm 1); pass false for states known
  // consistent.
  static Result<IndependenceReducibleMaintainer> Create(
      DatabaseState state, bool verify_consistency = true);

  // Validates the insert against the relation's block only. Returns the
  // block-extended tuple q on yes, kInconsistent on no.
  Result<PartialTuple> CheckInsert(size_t rel, const PartialTuple& tuple,
                                   MaintenanceStats* stats = nullptr) const;

  // CheckInsert + apply.
  Status Insert(size_t rel, const PartialTuple& tuple);

  const DatabaseState& state() const { return state_; }
  const RecognitionResult& recognition() const { return recognition_; }

  // Theorem 5.5: the scheme is ctm iff every block is split-free.
  bool IsCtm() const { return all_blocks_split_free_; }

 private:
  IndependenceReducibleMaintainer() = default;

  // The merged single-shard view (what state() exposes); each BlockShard
  // additionally owns its block's tuples and indexes.
  DatabaseState state_{DatabaseScheme::Create()};
  RecognitionResult recognition_;
  std::vector<BlockShard> blocks_;
  std::vector<size_t> rel_to_block_;
  bool all_blocks_split_free_ = true;
};

}  // namespace ird

#endif  // IRD_CORE_BLOCK_MAINTAINER_H_
