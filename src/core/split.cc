#include "core/split.h"

#include <deque>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "obs/obs.h"

namespace ird {

namespace {

std::vector<size_t> PoolOrAll(const DatabaseScheme& scheme,
                              const std::vector<size_t>& pool) {
  if (!pool.empty()) return pool;
  std::vector<size_t> all(scheme.size());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

// The Lemma 3.8 test body: W = pool members not containing K, probed with
// `closure_of` (so the scheme-only and engine-backed entry points share the
// logic but not the closure source).
template <typename ClosureOf>
bool KeySplitIn(const DatabaseScheme& scheme, const AttributeSet& key,
                const std::vector<size_t>& p, ClosureOf closure_of) {
  IRD_DCHECK(!key.Empty());
  // W = schemes of the pool not containing K; G = their key dependencies.
  std::vector<size_t> w;
  for (size_t i : p) {
    IRD_DCHECK(i < scheme.size());
    if (!key.IsSubsetOf(scheme.relation(i).attrs)) w.push_back(i);
  }
  // Lemma 3.8 via BMSU: the row for Wi in CHASE_G(T_W) is all-dv on K iff
  // K ⊆ Closure_G(Wi).
  for (size_t i : w) {
    IRD_COUNT(split.cover_checks);
    if (key.IsSubsetOf(closure_of(w, scheme.relation(i).attrs))) return true;
  }
  return false;
}

}  // namespace

bool IsKeySplit(const DatabaseScheme& scheme, const AttributeSet& key,
                const std::vector<size_t>& pool) {
  std::vector<size_t> p = PoolOrAll(scheme, pool);
  FdSet g;
  bool built = false;
  return KeySplitIn(scheme, key, p,
                    [&](const std::vector<size_t>& w, const AttributeSet& x) {
                      if (!built) {
                        g = scheme.KeyDependenciesOf(w);
                        built = true;
                      }
                      return g.Closure(x);
                    });
}

bool IsKeySplit(SchemeAnalysis& analysis, const AttributeSet& key,
                const std::vector<size_t>& pool) {
  const DatabaseScheme& scheme = analysis.scheme();
  std::vector<size_t> p = PoolOrAll(scheme, pool);
  SchemeAnalysis::Cache& cache = analysis.cache();
  auto cached = cache.key_split.find({p, key});
  if (cached != cache.key_split.end()) return cached->second;
  bool split = KeySplitIn(
      scheme, key, p,
      [&](const std::vector<size_t>& w, const AttributeSet& x) {
        // W is nonempty here (the loop only probes members of W), so the
        // empty-pool-means-full convention of Closure is never tripped.
        return analysis.Closure(w, x);
      });
  cache.key_split.emplace(std::make_pair(std::move(p), key), split);
  return split;
}

bool IsKeySplitInClosureOf(const DatabaseScheme& scheme,
                           const AttributeSet& key, size_t start,
                           const std::vector<size_t>& pool) {
  std::vector<size_t> p = PoolOrAll(scheme, pool);
  IRD_CHECK_MSG(p.size() <= 16,
                "definitional split search is exponential; pool too large");
  // BFS over the closure states reachable by partial computations of
  // start+ (Algorithm 3).
  std::unordered_set<AttributeSet, AttributeSetHash> visited;
  std::deque<AttributeSet> queue;
  queue.push_back(scheme.relation(start).attrs);
  visited.insert(queue.back());
  while (!queue.empty()) {
    IRD_COUNT(split.bfs_states);
    AttributeSet closure = std::move(queue.front());
    queue.pop_front();
    for (size_t j : p) {
      const RelationScheme& sj = scheme.relation(j);
      // Applicability per Algorithm 3 step (2).
      if (sj.attrs.IsSubsetOf(closure)) continue;
      if (!sj.ContainsKey(closure)) continue;
      // Does Sj complete K here, without containing K?
      if (!key.IsSubsetOf(closure) &&
          key.IsSubsetOf(closure.Union(sj.attrs)) &&
          !key.IsSubsetOf(sj.attrs)) {
        return true;
      }
      AttributeSet next = closure.Union(sj.attrs);
      // Applicability guarantees strict growth, which bounds the BFS by
      // the (finite) lattice of closure states.
      IRD_DCHECK(closure.IsSubsetOf(next) && next != closure);
      if (visited.insert(next).second) {
        queue.push_back(std::move(next));
      }
    }
  }
  return false;
}

bool IsKeySplitByDefinition(const DatabaseScheme& scheme,
                            const AttributeSet& key,
                            const std::vector<size_t>& pool) {
  std::vector<size_t> p = PoolOrAll(scheme, pool);
  for (size_t start : p) {
    if (IsKeySplitInClosureOf(scheme, key, start, p)) return true;
  }
  return false;
}

namespace {

// Distinct keys of the pool's schemes, first-declaration order.
std::vector<AttributeSet> DistinctKeys(const DatabaseScheme& scheme,
                                       const std::vector<size_t>& p) {
  std::vector<AttributeSet> distinct;
  std::unordered_set<AttributeSet, AttributeSetHash> seen;
  for (size_t i : p) {
    for (const AttributeSet& key : scheme.relation(i).keys) {
      if (seen.insert(key).second) distinct.push_back(key);
    }
  }
  return distinct;
}

}  // namespace

std::vector<AttributeSet> SplitKeys(const DatabaseScheme& scheme,
                                    const std::vector<size_t>& pool) {
  IRD_SPAN("split");
  std::vector<size_t> p = PoolOrAll(scheme, pool);
  std::vector<AttributeSet> split;
  for (const AttributeSet& key : DistinctKeys(scheme, p)) {
    if (IsKeySplit(scheme, key, p)) split.push_back(key);
  }
  return split;
}

const std::vector<AttributeSet>& SplitKeys(SchemeAnalysis& analysis,
                                           const std::vector<size_t>& pool) {
  const DatabaseScheme& scheme = analysis.scheme();
  std::vector<size_t> p = PoolOrAll(scheme, pool);
  SchemeAnalysis::Cache& cache = analysis.cache();
  auto cached = cache.split_keys.find(p);
  if (cached != cache.split_keys.end()) return cached->second;
  IRD_SPAN("split");
  std::vector<AttributeSet> split;
  for (const AttributeSet& key : DistinctKeys(scheme, p)) {
    if (IsKeySplit(analysis, key, p)) split.push_back(key);
  }
  return cache.split_keys.emplace(std::move(p), std::move(split))
      .first->second;
}

bool IsSplitFree(const DatabaseScheme& scheme,
                 const std::vector<size_t>& pool) {
  return SplitKeys(scheme, pool).empty();
}

bool IsSplitFree(SchemeAnalysis& analysis, const std::vector<size_t>& pool) {
  return SplitKeys(analysis, pool).empty();
}

}  // namespace ird
