// MaintainScratch: reusable buffers for the per-insert maintenance check
// paths (Algorithms 2, 4 and 5). Every check restricts the candidate tuple
// to a key and joins it with retrieved total tuples; without scratch each
// of those steps allocates a fresh value vector. Callers that validate
// many inserts (BlockShard, ShardedMaintainer's batch loop) thread one
// scratch through the whole run so the buffers are allocated once and
// recycled.
//
// A scratch is plain mutable state: never share one between threads. The
// batch validator allocates one per shard task for exactly this reason.

#ifndef IRD_CORE_MAINTAIN_SCRATCH_H_
#define IRD_CORE_MAINTAIN_SCRATCH_H_

#include <cstdint>
#include <vector>

#include "relation/partial_tuple.h"

namespace ird {

struct MaintainScratch {
  // CheckInsertCtm / CheckInsertKeyEquivalent: the candidate tuple's
  // per-key restriction (the seed of each extension).
  PartialTuple key_seed;
  // ExtendTuple: the working tuple's per-probe key restriction.
  PartialTuple restricted;
  // Join target; swapped with the accumulating tuple after each join so
  // the displaced buffer is reused for the next one.
  PartialTuple joined;
  // Algorithm 2's key worklist state.
  std::vector<uint8_t> processed;
  std::vector<uint8_t> queued;
  std::vector<size_t> unprocessed;
};

}  // namespace ird

#endif  // IRD_CORE_MAINTAIN_SCRATCH_H_
