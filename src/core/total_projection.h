// Bounded total-projection computation — the paper's query-answering story.
//
// For a key-equivalent (sub)scheme, Corollary 3.1(b): [X] is exactly the
// union of projections onto X of the joins of (minimal) lossless subsets
// covering X.
//
// For an independence-reducible scheme, Theorem 4.1 (cf. Example 12): for
// each lossless subset {D_j1, ..., D_jk} of the induced independent scheme
// D covering X, compute Y_j = D_j ∩ (∪ other D's ∪ X), obtain each [Y_j] by
// the block-level expression above, and take π_X([Y_1] ⋈ ... ⋈ [Y_k]);
// union over the subsets.
//
// Both are *predetermined relational expressions*: their size depends only
// on R and F, which is the boundedness property (paper §2.5).

#ifndef IRD_CORE_TOTAL_PROJECTION_H_
#define IRD_CORE_TOTAL_PROJECTION_H_

#include <vector>

#include "algebra/expression.h"
#include "core/recognition.h"
#include "engine/scheme_analysis.h"
#include "relation/database_state.h"

namespace ird {

// Corollary 3.1(b): the expression computing [X] on the key-equivalent
// subscheme `pool` (empty = all of R). Returns nullptr when no lossless
// subset of the pool covers X (then [X] contains no tuple from this block).
ExprPtr BuildKeyEquivalentProjectionExpr(const DatabaseScheme& scheme,
                                         const std::vector<size_t>& pool,
                                         const AttributeSet& x);
// Engine-backed flavor: the pool's ambient cover comes interned from the
// analysis instead of being rebuilt per call.
ExprPtr BuildKeyEquivalentProjectionExpr(SchemeAnalysis& analysis,
                                         const std::vector<size_t>& pool,
                                         const AttributeSet& x);

// Theorem 4.1: the expression computing [X] on an independence-reducible
// scheme, given an accepted recognition result. Returns nullptr when no
// lossless subset of D covers X (then [X] is empty).
ExprPtr BuildBoundedProjectionExpr(const DatabaseScheme& scheme,
                                   const RecognitionResult& recognition,
                                   const AttributeSet& x);
ExprPtr BuildBoundedProjectionExpr(SchemeAnalysis& analysis,
                                   const RecognitionResult& recognition,
                                   const AttributeSet& x);

// End-to-end query API: recognizes R, builds the bounded expression and
// evaluates it. kFailedPrecondition if R is not independence-reducible.
// The state is assumed consistent (the weak-instance semantics of [X] is
// only defined for consistent states).
Result<PartialRelation> TotalProjection(const DatabaseState& state,
                                        const AttributeSet& x);

// As above but with recognition precomputed (the common case when many
// queries run against one scheme).
PartialRelation TotalProjection(const DatabaseState& state,
                                const RecognitionResult& recognition,
                                const AttributeSet& x);

}  // namespace ird

#endif  // IRD_CORE_TOTAL_PROJECTION_H_
