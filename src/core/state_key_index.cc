#include "core/state_key_index.h"

#include <numeric>

namespace ird {

namespace {

uint64_t HashOn(const PartialTuple& tuple, const AttributeSet& key) {
  uint64_t h = 1469598103934665603ull;
  key.ForEach([&](AttributeId a) {
    h ^= static_cast<uint64_t>(tuple.At(a)) + 0x9e3779b97f4a7c15ull +
         (h << 6) + (h >> 2);
  });
  return h;
}

}  // namespace

Result<StateKeyIndex> StateKeyIndex::Build(const DatabaseState& state,
                                           std::vector<size_t> pool) {
  if (pool.empty()) {
    pool.resize(state.relation_count());
    std::iota(pool.begin(), pool.end(), 0);
  }
  StateKeyIndex idx;
  idx.pool_ = pool;
  for (size_t rel : pool) {
    PerRelation pr;
    pr.rel = rel;
    for (const AttributeSet& key : state.scheme().relation(rel).keys) {
      pr.keys.push_back(PerKey{key, {}});
    }
    idx.relations_.push_back(std::move(pr));
  }
  for (size_t rel : pool) {
    for (const PartialTuple& tuple : state.relation(rel).tuples()) {
      IRD_RETURN_IF_ERROR(idx.AddTuple(rel, tuple));
    }
  }
  return idx;
}

const StateKeyIndex::PerRelation* StateKeyIndex::FindRelation(
    size_t rel) const {
  for (const PerRelation& pr : relations_) {
    if (pr.rel == rel) return &pr;
  }
  return nullptr;
}

const PartialTuple* StateKeyIndex::Probe(size_t rel, const AttributeSet& key,
                                         const PartialTuple& tuple) const {
  const PerRelation* pr = FindRelation(rel);
  IRD_CHECK_MSG(pr != nullptr, "Probe on a relation outside the pool");
  for (const PerKey& pk : pr->keys) {
    if (pk.key != key) continue;
    auto it = pk.map.find(HashOn(tuple, key));
    if (it == pk.map.end()) return nullptr;
    for (const PartialTuple& candidate : it->second) {
      if (candidate.AgreesOn(tuple, key)) return &candidate;
    }
    return nullptr;
  }
  IRD_CHECK_MSG(false, "Probe with an undeclared key");
  return nullptr;
}

Status StateKeyIndex::AddTuple(size_t rel, const PartialTuple& tuple) {
  PerRelation* pr = nullptr;
  for (PerRelation& candidate : relations_) {
    if (candidate.rel == rel) {
      pr = &candidate;
      break;
    }
  }
  IRD_CHECK_MSG(pr != nullptr, "AddTuple on a relation outside the pool");
  // Verify against every key first, then install, so a failure leaves the
  // index unchanged.
  for (const PerKey& pk : pr->keys) {
    auto it = pk.map.find(HashOn(tuple, pk.key));
    if (it == pk.map.end()) continue;
    for (const PartialTuple& existing : it->second) {
      if (existing.AgreesOn(tuple, pk.key) && existing != tuple) {
        return Inconsistent("key violation inside one relation");
      }
      if (existing == tuple) return OkStatus();  // duplicate, set semantics
    }
  }
  for (PerKey& pk : pr->keys) {
    pk.map[HashOn(tuple, pk.key)].push_back(tuple);
    ++indexed_entries_;
  }
  return OkStatus();
}

}  // namespace ird
