#include "core/ctm_maintainer.h"

#include <utility>

#include "core/key_equivalence.h"
#include "core/split.h"
#include "obs/obs.h"
#include "relation/weak_instance.h"

namespace ird {

Result<PartialTuple> CheckInsertCtm(const DatabaseScheme& scheme,
                                    const StateKeyIndex& index, size_t rel,
                                    const PartialTuple& tuple,
                                    ExtensionStats* stats,
                                    MaintainScratch* scratch) {
  IRD_CHECK(tuple.attrs() == scheme.relation(rel).attrs);
  IRD_COUNT(maintain.alg5.checks);
  // Per-check latency distribution: Theorem 5.5 claims this path is
  // constant-time in the state size, so its p99 must stay flat as states
  // grow (compare maintain.alg2.check_ns, which may not).
  IRD_HISTOGRAM_TIMER_NS(maintain.alg5.check_ns);
  // Probes/extensions are tallied locally so the registry sees them on
  // every return path — the constant-time invariant of Theorem 5.5 is
  // asserted against these counters (tests/obs_invariants_test.cc).
  ExtensionStats local;
  auto flush = [&] {
    IRD_COUNT_ADD(maintain.alg5.probes, local.probes);
    if (stats != nullptr) {
      stats->probes += local.probes;
      stats->extensions += local.extensions;
    }
  };
  MaintainScratch local_scratch;
  MaintainScratch* s = scratch != nullptr ? scratch : &local_scratch;
  // Step (1)-(2): q := t ⋈ t'_1 ⋈ ... ⋈ t'_n over the keys of S_rel.
  PartialTuple q = tuple;
  for (const AttributeSet& key : scheme.relation(rel).keys) {
    tuple.RestrictInto(key, &s->key_seed);
    Result<PartialTuple> extended =
        ExtendTuple(scheme, index, s->key_seed, &local, s);
    if (!extended.ok()) {
      IRD_COUNT(maintain.alg5.rejects);
      flush();
      return extended.status();
    }
    if (!q.JoinInto(extended.value(), &s->joined)) {
      // Step (3): q = ∅ — the insert contradicts the existing total tuple
      // on this key.
      IRD_COUNT(maintain.alg5.rejects);
      flush();
      return Inconsistent("inserted tuple contradicts the total tuple on " +
                          scheme.universe().Format(key));
    }
    std::swap(q, s->joined);
  }
  flush();
  return q;
}

Result<CtmMaintainer> CtmMaintainer::Create(DatabaseState state,
                                            bool verify_consistency) {
  if (!IsKeyEquivalent(state.scheme())) {
    return FailedPrecondition(
        "CtmMaintainer requires a key-equivalent scheme");
  }
  if (!IsSplitFree(state.scheme())) {
    return FailedPrecondition(
        "CtmMaintainer requires a split-free scheme (Corollary 3.3)");
  }
  if (verify_consistency && !IsConsistent(state)) {
    return Inconsistent("initial state has no weak instance");
  }
  Result<StateKeyIndex> index = StateKeyIndex::Build(state);
  if (!index.ok()) return index.status();
  return CtmMaintainer(std::move(state), std::move(index).value());
}

Result<PartialTuple> CtmMaintainer::CheckInsert(size_t rel,
                                                const PartialTuple& tuple,
                                                ExtensionStats* stats) const {
  return CheckInsertCtm(state_.scheme(), index_, rel, tuple, stats);
}

Status CtmMaintainer::Insert(size_t rel, const PartialTuple& tuple) {
  Result<PartialTuple> q = CheckInsert(rel, tuple);
  if (!q.ok()) return q.status();
  state_.mutable_relation(rel).AddUnique(tuple);
  return index_.AddTuple(rel, tuple);
}

}  // namespace ird
