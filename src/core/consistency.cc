#include "core/consistency.h"

#include "core/representative_index.h"

namespace ird {

Status CheckConsistencyByBlocks(const DatabaseState& state,
                                const RecognitionResult& recognition) {
  IRD_CHECK_MSG(recognition.accepted,
                "block consistency checking requires an accepted scheme");
  for (size_t b = 0; b < recognition.partition.size(); ++b) {
    Result<RepresentativeIndex> block =
        RepresentativeIndex::Build(state, recognition.partition[b]);
    if (!block.ok()) {
      return Inconsistent("block " + std::to_string(b + 1) +
                          " has no weak instance: " +
                          block.status().message());
    }
  }
  return OkStatus();
}

Status CheckConsistencyByBlocks(const DatabaseState& state) {
  RecognitionResult recognition =
      RecognizeIndependenceReducible(state.scheme());
  if (!recognition.accepted) {
    return FailedPrecondition(
        "scheme is not independence-reducible: " +
        recognition.violation->ToString(*recognition.induced));
  }
  return CheckConsistencyByBlocks(state, recognition);
}

}  // namespace ird
