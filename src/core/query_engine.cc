#include "core/query_engine.h"

namespace ird {

Result<QueryEngine> QueryEngine::Create(DatabaseScheme scheme) {
  RecognitionResult recognition = RecognizeIndependenceReducible(scheme);
  if (!recognition.accepted) {
    return FailedPrecondition(
        "scheme is not independence-reducible: " +
        recognition.violation->ToString(*recognition.induced));
  }
  return QueryEngine(std::move(scheme), std::move(recognition));
}

ExprPtr QueryEngine::PlanFor(const AttributeSet& x) {
  auto it = plans_.find(x);
  if (it != plans_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  ExprPtr plan = BuildBoundedProjectionExpr(scheme_, recognition_, x);
  plans_.emplace(x, plan);
  return plan;
}

PartialRelation QueryEngine::TotalProjection(const DatabaseState& state,
                                             const AttributeSet& x) {
  ExprPtr plan = PlanFor(x);
  if (plan == nullptr) return PartialRelation(x);
  return Evaluate(*plan, state);
}

}  // namespace ird
