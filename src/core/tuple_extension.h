// Algorithm 4 (paper §3.3.1): extend a tuple given on a key K as far as
// possible using the key dependencies and the raw state — each step is one
// single-tuple conjunctive selection σ_{Ki='k'}(Si) answered by the
// StateKeyIndex. On a consistent state of a split-free key-equivalent
// scheme, the result is the unique total tuple of the representative
// instance embedding the key value (Lemma 3.3).

#ifndef IRD_CORE_TUPLE_EXTENSION_H_
#define IRD_CORE_TUPLE_EXTENSION_H_

#include "core/maintain_scratch.h"
#include "core/state_key_index.h"
#include "relation/database_state.h"

namespace ird {

// Statistics of one extension run (for the ctm experiments: the number of
// probes is bounded by |S| * |keys|, independent of the state size).
struct ExtensionStats {
  size_t probes = 0;
  size_t extensions = 0;
};

// Runs Algorithm 4 from `seed`, a tuple on a key of some scheme in the
// index's pool. Returns the extended tuple t' on C. Fails with
// kInconsistent only if the underlying state is itself inconsistent (two
// state tuples disagreeing on attributes the chase would equate).
// `scratch` (optional) recycles the per-probe restriction and join buffers
// across calls.
Result<PartialTuple> ExtendTuple(const DatabaseScheme& scheme,
                                 const StateKeyIndex& index,
                                 const PartialTuple& seed,
                                 ExtensionStats* stats = nullptr,
                                 MaintainScratch* scratch = nullptr);

}  // namespace ird

#endif  // IRD_CORE_TUPLE_EXTENSION_H_
