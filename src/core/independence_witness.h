// Constructive completeness of the uniqueness condition: from a uniqueness
// violation (closure of Ri wrt F - Fj embeds a key dependency of Rj), build
// a state that is locally consistent but globally inconsistent — the
// LSAT ≠ WSAT witness showing the scheme is not independent. (Example 1's
// three-tuple university counterexample is the instance this produces for
// that scheme.)

#ifndef IRD_CORE_INDEPENDENCE_WITNESS_H_
#define IRD_CORE_INDEPENDENCE_WITNESS_H_

#include "base/status.h"
#include "core/independence.h"
#include "relation/database_state.h"

namespace ird {

// A witness state for `violation` on `scheme`: single-tuple relations (so
// locally consistent by construction) whose chase derives the embedded key
// dependency of Rj from the Ri side and contradicts the Rj tuple. Fails
// with kFailedPrecondition if the scheme has no uniqueness violation.
Result<DatabaseState> BuildDependenceWitness(const DatabaseScheme& scheme);

}  // namespace ird

#endif  // IRD_CORE_INDEPENDENCE_WITNESS_H_
