// Algorithm 6 (paper §5.2): recognizes exactly the independence-reducible
// database schemes (Corollary 5.1 + Theorem 5.1). Pipeline: compute the
// key-equivalent partition with KEP, merge each block into one relation
// scheme of the induced scheme D, and test D for independence via the
// uniqueness condition.

#ifndef IRD_CORE_RECOGNITION_H_
#define IRD_CORE_RECOGNITION_H_

#include <optional>
#include <vector>

#include "core/independence.h"
#include "core/kep.h"
#include "engine/scheme_analysis.h"
#include "schema/database_scheme.h"

namespace ird {

// The corresponding independence-reducible database scheme D of R induced
// by `partition`: one relation ∪T_p per block, declaring the (deduplicated)
// keys of the block's members. Shares R's universe.
DatabaseScheme InducedScheme(const DatabaseScheme& scheme,
                             const std::vector<std::vector<size_t>>& partition);

struct RecognitionResult {
  bool accepted = false;
  // The key-equivalent partition {KE_1, ..., KE_n} from step (1).
  std::vector<std::vector<size_t>> partition;
  // D = {∪KE_1, ..., ∪KE_n}.
  std::optional<DatabaseScheme> induced;
  // Why D failed the independence test (set iff rejected).
  std::optional<UniquenessViolation> violation;
};

// Algorithm 6. Accepts iff R is independence-reducible wrt its embedded key
// dependencies; on acceptance, `partition` is an independence-reducible
// partition and `induced` the corresponding independent scheme.
RecognitionResult RecognizeIndependenceReducible(const DatabaseScheme& scheme);

// Engine-backed flavor: KEP, the induced scheme (with its own child
// analysis) and the uniqueness verdict are all cached in the analysis, so
// repeated recognitions of one scheme build no engine twice and recompute
// nothing.
RecognitionResult RecognizeIndependenceReducible(SchemeAnalysis& analysis);

// Convenience predicates.
bool IsIndependenceReducible(const DatabaseScheme& scheme);
bool IsIndependenceReducible(SchemeAnalysis& analysis);

}  // namespace ird

#endif  // IRD_CORE_RECOGNITION_H_
