// Function KEP (paper §5.1): the key-equivalent partition of R — the unique
// partition into maximal blocks each key-equivalent wrt its own embedded
// key dependencies. Computed by the paper's recursive refinement: group
// schemes by equal closure, recurse into each group with the group's own
// key dependencies.

#ifndef IRD_CORE_KEP_H_
#define IRD_CORE_KEP_H_

#include <vector>

#include "engine/scheme_analysis.h"
#include "schema/database_scheme.h"

namespace ird {

// The key-equivalent partition of R. Each block is a sorted vector of
// relation indices; blocks are ordered by their smallest member.
std::vector<std::vector<size_t>> KeyEquivalentPartition(
    const DatabaseScheme& scheme);

// Engine-backed flavor: every per-pool closure goes through the analysis's
// memoized engines and the partition itself is cached in the analysis —
// the second call is a lookup. The returned reference is valid until the
// scheme's revision changes.
const std::vector<std::vector<size_t>>& KeyEquivalentPartition(
    SchemeAnalysis& analysis);

}  // namespace ird

#endif  // IRD_CORE_KEP_H_
