// Augmentation and reduction (paper §4.3): AUG adds subsets of existing
// relation schemes, RED removes relation schemes properly contained in
// others. Theorem 4.3: the class of independence-reducible schemes is
// closed under augmentation; Corollary 4.2: R is independence-reducible iff
// RED(R) is. These operations let a designer add "view-like" sub-relations
// without losing the class's guarantees.

#ifndef IRD_CORE_AUGMENTATION_H_
#define IRD_CORE_AUGMENTATION_H_

#include <string>
#include <vector>

#include "schema/database_scheme.h"

namespace ird {

// R ∪ {S}: adds a relation scheme over `attrs`, a nonempty subset of some
// existing relation scheme. Keys of the new scheme: the keys of existing
// relations embedded in `attrs` if any (Theorem 4.3 Case 2 — they are all
// equivalent there), else `attrs` itself (Case 1: S embeds no key, so S's
// only key dependency is trivial).
Status Augment(DatabaseScheme* scheme, std::string name,
               const AttributeSet& attrs);

// RED(R): drops every relation scheme properly contained in another (and
// duplicates beyond the first). Returns the reduction as a new scheme.
DatabaseScheme Reduce(const DatabaseScheme& scheme);

}  // namespace ird

#endif  // IRD_CORE_AUGMENTATION_H_
