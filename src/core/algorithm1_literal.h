// Algorithm 1 transcribed literally onto a tableau (paper §3.1): while two
// rows agree on a key but have different constant-component sets, copy
// constants across (cases (1)/(2)); finally drop duplicate rows. The
// production engine is core/representative_index.h (same semantics, hash
// indexes, incremental); this transcription exists so tests can check the
// two against each other and against the generic chase.

#ifndef IRD_CORE_ALGORITHM1_LITERAL_H_
#define IRD_CORE_ALGORITHM1_LITERAL_H_

#include "base/status.h"
#include "relation/database_state.h"
#include "tableau/tableau.h"

namespace ird {

struct Algorithm1Stats {
  size_t case1 = 0;  // comparable constant sets
  size_t case2 = 0;  // incomparable constant sets
  size_t duplicates_removed = 0;
};

// Runs Algorithm 1 on the state tableau of `state` (which must live on a
// key-equivalent scheme). Returns the final tableau — the representative
// instance — or kInconsistent when two rows agreeing on a key clash on a
// constant (the state has no weak instance; Algorithm 1's precondition is
// a consistent state, so this is the graceful extension).
Result<Tableau> RunAlgorithm1Literal(const DatabaseState& state,
                                     Algorithm1Stats* stats = nullptr);

}  // namespace ird

#endif  // IRD_CORE_ALGORITHM1_LITERAL_H_
