// Algorithm 5 (paper §3.3.1): constant-time maintenance for split-free
// key-equivalent database schemes. Per Theorem 3.3 / Corollary 3.3 this
// solves the maintenance problem with a number of tuple accesses that
// depends only on R and F — never on the state size.

#ifndef IRD_CORE_CTM_MAINTAINER_H_
#define IRD_CORE_CTM_MAINTAINER_H_

#include <vector>

#include "core/state_key_index.h"
#include "core/tuple_extension.h"
#include "relation/database_state.h"

namespace ird {

// Algorithm 5 on one instance <s, t>: extends t on each key of its scheme
// (Algorithm 4) and intersects the results. Returns the joined tuple q on
// yes, kInconsistent on no. Pure. `scratch` (optional) recycles the
// restriction/join buffers across checks.
Result<PartialTuple> CheckInsertCtm(const DatabaseScheme& scheme,
                                    const StateKeyIndex& index, size_t rel,
                                    const PartialTuple& tuple,
                                    ExtensionStats* stats = nullptr,
                                    MaintainScratch* scratch = nullptr);

// Stateful wrapper over a whole split-free key-equivalent scheme.
class CtmMaintainer {
 public:
  // `state` must live on a split-free key-equivalent scheme and be
  // consistent. `verify_consistency` additionally chases the initial state
  // (exact but state-sized work); switch it off when the state is known
  // consistent, e.g. built through maintained inserts.
  static Result<CtmMaintainer> Create(DatabaseState state,
                                      bool verify_consistency = true);

  // Algorithm 5. Returns q on yes, kInconsistent on no.
  Result<PartialTuple> CheckInsert(size_t rel, const PartialTuple& tuple,
                                   ExtensionStats* stats = nullptr) const;

  // CheckInsert + apply (state and key indexes).
  Status Insert(size_t rel, const PartialTuple& tuple);

  const DatabaseState& state() const { return state_; }

 private:
  CtmMaintainer(DatabaseState state, StateKeyIndex index)
      : state_(std::move(state)), index_(std::move(index)) {}

  DatabaseState state_;
  StateKeyIndex index_;
};

}  // namespace ird

#endif  // IRD_CORE_CTM_MAINTAINER_H_
