// One-stop classification of a database scheme against every class the
// paper discusses — the "scheme designer report" exposed by examples and
// the class-census experiment (E5).

#ifndef IRD_CORE_CLASSIFY_H_
#define IRD_CORE_CLASSIFY_H_

#include <optional>
#include <vector>

#include "core/recognition.h"
#include "schema/database_scheme.h"

namespace ird {

struct SchemeClassification {
  Status valid;  // DatabaseScheme::Validate
  bool bcnf = false;
  bool lossless = false;
  bool independent = false;           // uniqueness condition
  bool key_equivalent = false;        // §3
  bool gamma_acyclic = false;         // §2.4 / [F3] (γ-cycle search)
  bool alpha_acyclic = false;         // GYO baseline
  RecognitionResult recognition;      // Algorithm 6
  // Per accepted block: is it split-free? (empty when rejected)
  std::vector<bool> block_split_free;
  bool independence_reducible = false;
  bool split_free = false;  // all blocks split-free
  // Derived verdicts (Theorems 4.1, 4.2, 5.5):
  bool bounded = false;                  // accepted ⇒ bounded
  bool algebraic_maintainable = false;   // accepted ⇒ algebraic-maintainable
  bool ctm = false;                      // accepted ∧ split-free ⇔ ctm
};

// Rendering lives in diagnostics/render.h (FormatSchemeReport), which pairs
// the verdicts with witness-backed explanations of every "no".

// Runs every test. `test_acyclicity` can be disabled for schemes too large
// for the exact γ-acyclicity search.
SchemeClassification ClassifyScheme(const DatabaseScheme& scheme,
                                    bool test_acyclicity = true);

// Engine-backed flavor: losslessness, independence, recognition and the
// per-block split tests all share the analysis's interned covers and
// closure memos (BCNF and acyclicity are closure-free or enumerate
// projected FDs and stay on the scheme).
SchemeClassification ClassifyScheme(SchemeAnalysis& analysis,
                                    bool test_acyclicity = true);

}  // namespace ird

#endif  // IRD_CORE_CLASSIFY_H_
