// Sagiv independence (paper §2.7): LSAT(R,F) = WSAT(R,F) — local key
// satisfaction implies global consistency. For cover-embedding schemes of
// key dependencies, independence is characterized by the *uniqueness
// condition* [S1][S2]: for all Ri ≠ Rj, the closure of Ri wrt F - Fj does
// not contain (embed) a key dependency of Rj.
//
// UniquenessViolation itself lives in engine/scheme_analysis.h (the
// analysis context caches the verdict); it is re-exported here so existing
// includes keep working.

#ifndef IRD_CORE_INDEPENDENCE_H_
#define IRD_CORE_INDEPENDENCE_H_

#include <optional>

#include "engine/scheme_analysis.h"
#include "schema/database_scheme.h"

namespace ird {

// Returns a violation of the uniqueness condition, or nullopt if R
// satisfies it (and is therefore independent wrt its key dependencies).
std::optional<UniquenessViolation> FindUniquenessViolation(
    const DatabaseScheme& scheme);

// Engine-backed flavor: the leave-one-out closures go through the
// analysis's memoized F - Fj engines and the verdict is cached in the
// analysis.
std::optional<UniquenessViolation> FindUniquenessViolation(
    SchemeAnalysis& analysis);

// True iff R satisfies the uniqueness condition.
bool IsIndependent(const DatabaseScheme& scheme);
bool IsIndependent(SchemeAnalysis& analysis);

}  // namespace ird

#endif  // IRD_CORE_INDEPENDENCE_H_
