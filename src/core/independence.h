// Sagiv independence (paper §2.7): LSAT(R,F) = WSAT(R,F) — local key
// satisfaction implies global consistency. For cover-embedding schemes of
// key dependencies, independence is characterized by the *uniqueness
// condition* [S1][S2]: for all Ri ≠ Rj, the closure of Ri wrt F - Fj does
// not contain (embed) a key dependency of Rj.

#ifndef IRD_CORE_INDEPENDENCE_H_
#define IRD_CORE_INDEPENDENCE_H_

#include <optional>
#include <string>
#include <vector>

#include "schema/database_scheme.h"

namespace ird {

// A witness that the uniqueness condition fails: Closure_{F-Fj}(Ri) embeds
// the key dependency key -> attr of Rj.
struct UniquenessViolation {
  size_t i;
  size_t j;
  AttributeSet key;       // a key of Rj
  AttributeId attribute;  // an attribute of Rj - key inside the closure

  std::string ToString(const DatabaseScheme& scheme) const;
};

// Returns a violation of the uniqueness condition, or nullopt if R
// satisfies it (and is therefore independent wrt its key dependencies).
std::optional<UniquenessViolation> FindUniquenessViolation(
    const DatabaseScheme& scheme);

// True iff R satisfies the uniqueness condition.
bool IsIndependent(const DatabaseScheme& scheme);

}  // namespace ird

#endif  // IRD_CORE_INDEPENDENCE_H_
