// BlockShard: one block of the independence-reducible partition as a
// self-contained maintenance unit. The shard owns the block's tuples (a
// pool-restricted DatabaseState), its access structures (StateKeyIndex for
// split-free blocks, RepresentativeIndex for split blocks) and the
// per-block maintainer state behind Algorithms 5 and 2. Because the merged
// induced scheme is independent (Theorem 4.2), a shard validates and
// applies inserts into its pool without ever reading another shard — the
// paper's structural result turned into a unit of data ownership.

#ifndef IRD_CORE_BLOCK_SHARD_H_
#define IRD_CORE_BLOCK_SHARD_H_

#include <optional>
#include <vector>

#include "core/ctm_maintainer.h"
#include "core/key_equivalent_maintainer.h"
#include "core/representative_index.h"
#include "core/state_key_index.h"
#include "relation/database_state.h"

namespace ird {

class BlockShard {
 public:
  // Builds the shard for `pool` from the pool's tuples in `state`. The pool
  // must be a key-equivalent block; `split_free` selects the Algorithm 5
  // (StateKeyIndex) vs Algorithm 2 (RepresentativeIndex) machinery. With
  // `verify_consistency`, the block substate is chased once (Algorithm 1)
  // even on the split-free path; building a split block's representative
  // instance verifies consistency as a byproduct either way. Fails with
  // kInconsistent when the block substate has no weak instance.
  static Result<BlockShard> Build(const DatabaseState& state,
                                  std::vector<size_t> pool, bool split_free,
                                  bool verify_consistency);

  const std::vector<size_t>& pool() const { return pool_; }
  bool split_free() const { return split_free_; }

  // The shard's view of the database: only this block's relations are
  // populated (full-scheme skeleton, so relation indices stay global).
  const DatabaseState& substate() const { return substate_; }

  // Tuples owned by this shard.
  size_t TupleCount() const { return substate_.TupleCount(); }

  // Block-local validation: Algorithm 5 (split-free) or Algorithm 2
  // (split), against this shard's state only. `rel` must belong to the
  // pool. Returns the block-extended tuple q on yes, kInconsistent on no.
  // Pure. `scratch` (optional, never shared between threads) recycles the
  // restriction/join buffers across checks.
  Result<PartialTuple> CheckInsert(size_t rel, const PartialTuple& tuple,
                                   MaintenanceStats* stats = nullptr,
                                   MaintainScratch* scratch = nullptr) const;

  // Applies an insert this shard has already validated: updates the owned
  // substate and whichever index drives the block's algorithm.
  Status Apply(size_t rel, const PartialTuple& tuple);

  // CheckInsert + Apply.
  Status Insert(size_t rel, const PartialTuple& tuple,
                MaintainScratch* scratch = nullptr);

 private:
  BlockShard() : substate_(DatabaseScheme::Create()) {}

  std::vector<size_t> pool_;
  // Algorithm 2's distinct-key worklist universe, precomputed at Build so
  // per-insert checks skip the scan (split blocks only).
  std::vector<AttributeSet> pool_keys_;
  bool split_free_ = false;
  DatabaseState substate_;
  // Split-free blocks: raw-state key indexes driving Algorithm 5.
  std::optional<StateKeyIndex> key_index_;
  // Split blocks: the block representative instance driving Algorithm 2.
  std::optional<RepresentativeIndex> rep_index_;
};

}  // namespace ird

#endif  // IRD_CORE_BLOCK_SHARD_H_
