// Algorithm 2 (paper §3.2): incremental constraint enforcement for
// key-equivalent database schemes. Given a consistent state's
// representative instance and an inserted tuple, decides in a bounded
// number of single-tuple key lookups whether the enlarged state is still
// consistent — the algebraic-maintainability of Theorem 3.2.

#ifndef IRD_CORE_KEY_EQUIVALENT_MAINTAINER_H_
#define IRD_CORE_KEY_EQUIVALENT_MAINTAINER_H_

#include <vector>

#include "core/maintain_scratch.h"
#include "core/representative_index.h"
#include "relation/database_state.h"

namespace ird {

// Statistics of one Algorithm 2 run (the quantities the paper bounds).
struct MaintenanceStats {
  size_t keys_processed = 0;
  size_t lookups = 0;
};

// The distinct keys embedded in the pool's relations — Algorithm 2's key
// worklist universe. Depends only on the scheme and pool, so callers that
// check many inserts compute it once (BlockShard caches it per block).
std::vector<AttributeSet> DistinctPoolKeys(const DatabaseScheme& scheme,
                                           const std::vector<size_t>& pool);

// Algorithm 2 on one instance <s, t>: `index` must be the representative
// instance of the (pool-restricted) current state; `rel` ∈ pool is the
// relation receiving `tuple`. Returns the extended tuple q on success
// ("yes", plus q, as in the paper) or kInconsistent ("no"). Pure — neither
// the state nor the index is modified.
Result<PartialTuple> CheckInsertKeyEquivalent(
    const DatabaseScheme& scheme, const std::vector<size_t>& pool,
    const RepresentativeIndex& index, size_t rel, const PartialTuple& tuple,
    MaintenanceStats* stats = nullptr);

// As above with `pool_keys` precomputed by DistinctPoolKeys and optional
// reusable scratch — the form the per-insert hot path (BlockShard) uses.
Result<PartialTuple> CheckInsertKeyEquivalent(
    const DatabaseScheme& scheme,
    const std::vector<AttributeSet>& pool_keys,
    const RepresentativeIndex& index, size_t rel, const PartialTuple& tuple,
    MaintenanceStats* stats = nullptr, MaintainScratch* scratch = nullptr);

// Stateful wrapper over a whole key-equivalent scheme: owns the state and
// keeps the representative instance in sync across accepted inserts.
class KeyEquivalentMaintainer {
 public:
  // `state` must live on a key-equivalent scheme and be consistent (Build
  // of the representative index verifies consistency as a byproduct).
  static Result<KeyEquivalentMaintainer> Create(DatabaseState state);

  // Algorithm 2. Returns q on yes, kInconsistent on no.
  Result<PartialTuple> CheckInsert(size_t rel, const PartialTuple& tuple,
                                   MaintenanceStats* stats = nullptr) const;

  // CheckInsert + apply: updates both the state and the index.
  Status Insert(size_t rel, const PartialTuple& tuple);

  const DatabaseState& state() const { return state_; }
  const RepresentativeIndex& index() const { return index_; }

 private:
  KeyEquivalentMaintainer(DatabaseState state, RepresentativeIndex index,
                          std::vector<size_t> pool)
      : state_(std::move(state)),
        index_(std::move(index)),
        pool_(std::move(pool)),
        pool_keys_(DistinctPoolKeys(state_.scheme(), pool_)) {}

  DatabaseState state_;
  RepresentativeIndex index_;
  std::vector<size_t> pool_;
  std::vector<AttributeSet> pool_keys_;  // DistinctPoolKeys(scheme, pool_)
};

}  // namespace ird

#endif  // IRD_CORE_KEY_EQUIVALENT_MAINTAINER_H_
