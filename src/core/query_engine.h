// QueryEngine: the query-answering facade for independence-reducible
// schemes. Runs recognition once, compiles each requested X-total
// projection into its Theorem 4.1 expression on first use, and caches the
// plans — the "predetermined relational expressions" of boundedness made
// into a long-lived service object.

#ifndef IRD_CORE_QUERY_ENGINE_H_
#define IRD_CORE_QUERY_ENGINE_H_

#include <unordered_map>

#include "algebra/expression.h"
#include "core/recognition.h"
#include "core/total_projection.h"
#include "relation/database_state.h"

namespace ird {

class QueryEngine {
 public:
  // Fails with kFailedPrecondition when the scheme is rejected by
  // Algorithm 6 (then only chase-based answering applies).
  static Result<QueryEngine> Create(DatabaseScheme scheme);

  // The cached plan for [X]; nullptr when no lossless subset of the
  // induced scheme covers X (then [X] is always empty).
  ExprPtr PlanFor(const AttributeSet& x);

  // Evaluates [X] against `state` (which must live on the engine's scheme
  // and be consistent — the weak-instance semantics of [X] presumes it).
  PartialRelation TotalProjection(const DatabaseState& state,
                                  const AttributeSet& x);

  const DatabaseScheme& scheme() const { return scheme_; }
  const RecognitionResult& recognition() const { return recognition_; }

  size_t cache_hits() const { return hits_; }
  size_t cache_misses() const { return misses_; }

 private:
  QueryEngine(DatabaseScheme scheme, RecognitionResult recognition)
      : scheme_(std::move(scheme)), recognition_(std::move(recognition)) {}

  DatabaseScheme scheme_;
  RecognitionResult recognition_;
  std::unordered_map<AttributeSet, ExprPtr, AttributeSetHash> plans_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace ird

#endif  // IRD_CORE_QUERY_ENGINE_H_
