#include "core/tuple_extension.h"

#include <utility>

namespace ird {

Result<PartialTuple> ExtendTuple(const DatabaseScheme& scheme,
                                 const StateKeyIndex& index,
                                 const PartialTuple& seed,
                                 ExtensionStats* stats,
                                 MaintainScratch* scratch) {
  MaintainScratch local_scratch;
  MaintainScratch* s = scratch != nullptr ? scratch : &local_scratch;
  PartialTuple t = seed;
  // Step (2): while some tuple p of some si has a key Ki ⊆ C with
  // p[Ki] = t'[Ki] and Si - C ≠ ∅, absorb p. A (relation, key) probe that
  // missed can never hit later (C only grows, the state is fixed), so each
  // pair is probed at most once per growth epoch; we simply rescan until a
  // full pass makes no progress — the number of passes is at most the
  // number of relations in the pool.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t rel : index.pool()) {
      const RelationScheme& r = scheme.relation(rel);
      if (r.attrs.IsSubsetOf(t.attrs())) continue;  // Si - C = ∅
      for (const AttributeSet& key : r.keys) {
        if (!key.IsSubsetOf(t.attrs())) continue;
        if (stats != nullptr) ++stats->probes;
        t.RestrictInto(key, &s->restricted);
        const PartialTuple* p = index.Probe(rel, key, s->restricted);
        if (p == nullptr) continue;
        // Step (3): t'[Si] := p[Si]; C := C ∪ Si. On a consistent state the
        // shared attributes agree; a clash means the state itself is
        // inconsistent.
        if (!t.JoinInto(*p, &s->joined)) {
          return Inconsistent(
              "state tuples disagree on chase-equated attributes");
        }
        // Swap rather than move so t's displaced buffer becomes the next
        // join target.
        std::swap(t, s->joined);
        if (stats != nullptr) ++stats->extensions;
        changed = true;
        break;
      }
      if (changed) break;
    }
  }
  return t;
}

}  // namespace ird
