#include "core/tuple_extension.h"

namespace ird {

Result<PartialTuple> ExtendTuple(const DatabaseScheme& scheme,
                                 const StateKeyIndex& index,
                                 const PartialTuple& seed,
                                 ExtensionStats* stats) {
  PartialTuple t = seed;
  // Step (2): while some tuple p of some si has a key Ki ⊆ C with
  // p[Ki] = t'[Ki] and Si - C ≠ ∅, absorb p. A (relation, key) probe that
  // missed can never hit later (C only grows, the state is fixed), so each
  // pair is probed at most once per growth epoch; we simply rescan until a
  // full pass makes no progress — the number of passes is at most the
  // number of relations in the pool.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t rel : index.pool()) {
      const RelationScheme& r = scheme.relation(rel);
      if (r.attrs.IsSubsetOf(t.attrs())) continue;  // Si - C = ∅
      for (const AttributeSet& key : r.keys) {
        if (!key.IsSubsetOf(t.attrs())) continue;
        if (stats != nullptr) ++stats->probes;
        const PartialTuple* p = index.Probe(rel, key, t.Restrict(key));
        if (p == nullptr) continue;
        // Step (3): t'[Si] := p[Si]; C := C ∪ Si. On a consistent state the
        // shared attributes agree; a clash means the state itself is
        // inconsistent.
        std::optional<PartialTuple> joined = t.Join(*p);
        if (!joined.has_value()) {
          return Inconsistent(
              "state tuples disagree on chase-equated attributes");
        }
        t = std::move(*joined);
        if (stats != nullptr) ++stats->extensions;
        changed = true;
        break;
      }
      if (changed) break;
    }
  }
  return t;
}

}  // namespace ird
