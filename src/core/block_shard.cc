#include "core/block_shard.h"

#include "obs/obs.h"

namespace ird {

Result<BlockShard> BlockShard::Build(const DatabaseState& state,
                                     std::vector<size_t> pool,
                                     bool split_free,
                                     bool verify_consistency) {
  BlockShard shard;
  shard.substate_ = state.Restrict(pool);
  shard.pool_ = std::move(pool);
  shard.split_free_ = split_free;
  if (split_free) {
    Result<StateKeyIndex> idx =
        StateKeyIndex::Build(shard.substate_, shard.pool_);
    if (!idx.ok()) return idx.status();
    shard.key_index_ = std::move(idx).value();
    if (verify_consistency) {
      Result<RepresentativeIndex> rep =
          RepresentativeIndex::Build(shard.substate_, shard.pool_);
      if (!rep.ok()) return rep.status();
    }
  } else {
    // Building the block representative instance chases the block substate,
    // which is also the consistency check.
    Result<RepresentativeIndex> rep =
        RepresentativeIndex::Build(shard.substate_, shard.pool_);
    if (!rep.ok()) return rep.status();
    shard.rep_index_ = std::move(rep).value();
    shard.pool_keys_ =
        DistinctPoolKeys(shard.substate_.scheme(), shard.pool_);
  }
  return shard;
}

Result<PartialTuple> BlockShard::CheckInsert(size_t rel,
                                             const PartialTuple& tuple,
                                             MaintenanceStats* stats,
                                             MaintainScratch* scratch) const {
  if (split_free_) {
    ExtensionStats ext_stats;
    Result<PartialTuple> q = CheckInsertCtm(substate_.scheme(), *key_index_,
                                            rel, tuple, &ext_stats, scratch);
    if (stats != nullptr) {
      stats->lookups += ext_stats.probes;
    }
    return q;
  }
  return CheckInsertKeyEquivalent(substate_.scheme(), pool_keys_,
                                  *rep_index_, rel, tuple, stats, scratch);
}

Status BlockShard::Apply(size_t rel, const PartialTuple& tuple) {
  substate_.mutable_relation(rel).AddUnique(tuple);
  if (split_free_) {
    return key_index_->AddTuple(rel, tuple);
  }
  return rep_index_->InsertTuple(rel, tuple);
}

Status BlockShard::Insert(size_t rel, const PartialTuple& tuple,
                          MaintainScratch* scratch) {
  // End-to-end per-insert latency (check + apply), on top of the per-path
  // check histograms inside CheckInsertCtm / CheckInsertKeyEquivalent.
  IRD_HISTOGRAM_TIMER_NS(shard.insert_ns);
  Result<PartialTuple> q = CheckInsert(rel, tuple, nullptr, scratch);
  if (!q.ok()) return q.status();
  return Apply(rel, tuple);
}

}  // namespace ird
