// Whole-state consistency checking for independence-reducible schemes via
// the §4.2 decomposition: the state is consistent iff every partition
// block's substate is (independence of the induced scheme lifts block-local
// consistency to global consistency). Each block check is one Algorithm 1
// run — typically far cheaper than chasing the whole state tableau, and
// embarrassingly block-parallel.

#ifndef IRD_CORE_CONSISTENCY_H_
#define IRD_CORE_CONSISTENCY_H_

#include "base/status.h"
#include "core/recognition.h"
#include "relation/database_state.h"

namespace ird {

// OK iff `state` is consistent wrt its key dependencies. `recognition`
// must be an accepted result for state's scheme. On inconsistency the
// status message names the offending block.
Status CheckConsistencyByBlocks(const DatabaseState& state,
                                const RecognitionResult& recognition);

// Convenience: runs recognition first; kFailedPrecondition when the scheme
// is outside the class (use relation/weak_instance.h's IsConsistent then).
Status CheckConsistencyByBlocks(const DatabaseState& state);

}  // namespace ird

#endif  // IRD_CORE_CONSISTENCY_H_
