#include "core/key_equivalent_maintainer.h"

#include <numeric>
#include <utility>

#include "core/key_equivalence.h"
#include "obs/obs.h"

namespace ird {

std::vector<AttributeSet> DistinctPoolKeys(const DatabaseScheme& scheme,
                                           const std::vector<size_t>& pool) {
  std::vector<AttributeSet> pool_keys;
  for (size_t i : pool) {
    for (const AttributeSet& key : scheme.relation(i).keys) {
      bool known = false;
      for (const AttributeSet& k : pool_keys) {
        if (k == key) {
          known = true;
          break;
        }
      }
      if (!known) pool_keys.push_back(key);
    }
  }
  return pool_keys;
}

Result<PartialTuple> CheckInsertKeyEquivalent(
    const DatabaseScheme& scheme, const std::vector<size_t>& pool,
    const RepresentativeIndex& index, size_t rel, const PartialTuple& tuple,
    MaintenanceStats* stats) {
  return CheckInsertKeyEquivalent(scheme, DistinctPoolKeys(scheme, pool),
                                  index, rel, tuple, stats);
}

Result<PartialTuple> CheckInsertKeyEquivalent(
    const DatabaseScheme& scheme,
    const std::vector<AttributeSet>& pool_keys,
    const RepresentativeIndex& index, size_t rel, const PartialTuple& tuple,
    MaintenanceStats* stats, MaintainScratch* scratch) {
  IRD_CHECK(tuple.attrs() == scheme.relation(rel).attrs);
  IRD_COUNT(maintain.alg2.checks);
  // Algorithm 2's per-check latency: the expression-maintenance side of
  // the paper's constant-vs-growing comparison with maintain.alg5.check_ns.
  IRD_HISTOGRAM_TIMER_NS(maintain.alg2.check_ns);
  MaintainScratch local_scratch;
  MaintainScratch* s = scratch != nullptr ? scratch : &local_scratch;

  // Step (1): start from the keys of the inserted tuple's scheme.
  s->processed.assign(pool_keys.size(), 0);
  s->queued.assign(pool_keys.size(), 0);
  s->unprocessed.clear();
  AttributeSet closure = scheme.relation(rel).attrs;
  for (size_t k = 0; k < pool_keys.size(); ++k) {
    if (pool_keys[k].IsSubsetOf(closure)) {
      s->unprocessed.push_back(k);
      s->queued[k] = 1;
    }
  }
  PartialTuple q = tuple;

  // Steps (2)-(10).
  while (!s->unprocessed.empty()) {
    size_t k = s->unprocessed.back();
    s->unprocessed.pop_back();
    s->processed[k] = 1;
    IRD_COUNT(maintain.alg2.keys_processed);
    if (stats != nullptr) ++stats->keys_processed;

    const AttributeSet& key = pool_keys[k];
    q.RestrictInto(key, &s->key_seed);
    const PartialTuple* p = index.Lookup(key, s->key_seed);
    IRD_COUNT(maintain.alg2.lookups);
    if (stats != nullptr) ++stats->lookups;
    // Step (4): v is the (unique) total tuple of the representative
    // instance with these key values, or the key values themselves.
    const PartialTuple& v = (p != nullptr) ? *p : s->key_seed;
    // Step (5)-(6): q := q ⋈ v; empty join means inconsistent.
    if (!q.JoinInto(v, &s->joined)) {
      IRD_COUNT(maintain.alg2.rejects);
      return Inconsistent("inserted tuple contradicts the total tuple on " +
                          scheme.universe().Format(key));
    }
    std::swap(q, s->joined);
    // Step (7): closure grows by v's defined attributes.
    closure.UnionWith(v.attrs());
    // Steps (8)-(9): queue the keys newly embedded in the closure.
    for (size_t k2 = 0; k2 < pool_keys.size(); ++k2) {
      if (!s->processed[k2] && !s->queued[k2] &&
          pool_keys[k2].IsSubsetOf(closure)) {
        s->unprocessed.push_back(k2);
        s->queued[k2] = 1;
      }
    }
  }
  // Step (11): yes, plus the extended tuple q.
  return q;
}

Result<KeyEquivalentMaintainer> KeyEquivalentMaintainer::Create(
    DatabaseState state) {
  if (!IsKeyEquivalent(state.scheme())) {
    return FailedPrecondition(
        "KeyEquivalentMaintainer requires a key-equivalent scheme");
  }
  std::vector<size_t> pool(state.scheme().size());
  std::iota(pool.begin(), pool.end(), 0);
  Result<RepresentativeIndex> index = RepresentativeIndex::Build(state, pool);
  if (!index.ok()) return index.status();
  return KeyEquivalentMaintainer(std::move(state),
                                 std::move(index).value(), std::move(pool));
}

Result<PartialTuple> KeyEquivalentMaintainer::CheckInsert(
    size_t rel, const PartialTuple& tuple, MaintenanceStats* stats) const {
  return CheckInsertKeyEquivalent(state_.scheme(), pool_keys_, index_, rel,
                                  tuple, stats);
}

Status KeyEquivalentMaintainer::Insert(size_t rel,
                                       const PartialTuple& tuple) {
  Result<PartialTuple> q = CheckInsert(rel, tuple);
  if (!q.ok()) return q.status();
  state_.mutable_relation(rel).AddUnique(tuple);
  return index_.InsertTuple(rel, tuple);
}

}  // namespace ird
