#include "core/key_equivalent_maintainer.h"

#include <numeric>

#include "core/key_equivalence.h"
#include "obs/obs.h"

namespace ird {

Result<PartialTuple> CheckInsertKeyEquivalent(
    const DatabaseScheme& scheme, const std::vector<size_t>& pool,
    const RepresentativeIndex& index, size_t rel, const PartialTuple& tuple,
    MaintenanceStats* stats) {
  IRD_CHECK(tuple.attrs() == scheme.relation(rel).attrs);
  IRD_COUNT(maintain.alg2.checks);
  // Algorithm 2's per-check latency: the expression-maintenance side of
  // the paper's constant-vs-growing comparison with maintain.alg5.check_ns.
  IRD_HISTOGRAM_TIMER_NS(maintain.alg2.check_ns);
  // Distinct keys embedded in the pool's relations.
  std::vector<AttributeSet> pool_keys;
  for (size_t i : pool) {
    for (const AttributeSet& key : scheme.relation(i).keys) {
      bool known = false;
      for (const AttributeSet& k : pool_keys) {
        if (k == key) {
          known = true;
          break;
        }
      }
      if (!known) pool_keys.push_back(key);
    }
  }

  // Step (1): start from the keys of the inserted tuple's scheme.
  std::vector<bool> processed(pool_keys.size(), false);
  std::vector<bool> queued(pool_keys.size(), false);
  std::vector<size_t> unprocessed;
  AttributeSet closure = scheme.relation(rel).attrs;
  for (size_t k = 0; k < pool_keys.size(); ++k) {
    if (pool_keys[k].IsSubsetOf(closure)) {
      unprocessed.push_back(k);
      queued[k] = true;
    }
  }
  PartialTuple q = tuple;

  // Steps (2)-(10).
  while (!unprocessed.empty()) {
    size_t k = unprocessed.back();
    unprocessed.pop_back();
    processed[k] = true;
    IRD_COUNT(maintain.alg2.keys_processed);
    if (stats != nullptr) ++stats->keys_processed;

    const AttributeSet& key = pool_keys[k];
    PartialTuple key_values = q.Restrict(key);
    const PartialTuple* p = index.Lookup(key, key_values);
    IRD_COUNT(maintain.alg2.lookups);
    if (stats != nullptr) ++stats->lookups;
    // Step (4): v is the (unique) total tuple of the representative
    // instance with these key values, or the key values themselves.
    const PartialTuple& v = (p != nullptr) ? *p : key_values;
    // Step (5)-(6): q := q ⋈ v; empty join means inconsistent.
    std::optional<PartialTuple> joined = q.Join(v);
    if (!joined.has_value()) {
      IRD_COUNT(maintain.alg2.rejects);
      return Inconsistent("inserted tuple contradicts the total tuple on " +
                          scheme.universe().Format(key));
    }
    q = std::move(*joined);
    // Step (7): closure grows by v's defined attributes.
    closure.UnionWith(v.attrs());
    // Steps (8)-(9): queue the keys newly embedded in the closure.
    for (size_t k2 = 0; k2 < pool_keys.size(); ++k2) {
      if (!processed[k2] && !queued[k2] &&
          pool_keys[k2].IsSubsetOf(closure)) {
        unprocessed.push_back(k2);
        queued[k2] = true;
      }
    }
  }
  // Step (11): yes, plus the extended tuple q.
  return q;
}

Result<KeyEquivalentMaintainer> KeyEquivalentMaintainer::Create(
    DatabaseState state) {
  if (!IsKeyEquivalent(state.scheme())) {
    return FailedPrecondition(
        "KeyEquivalentMaintainer requires a key-equivalent scheme");
  }
  std::vector<size_t> pool(state.scheme().size());
  std::iota(pool.begin(), pool.end(), 0);
  Result<RepresentativeIndex> index = RepresentativeIndex::Build(state, pool);
  if (!index.ok()) return index.status();
  return KeyEquivalentMaintainer(std::move(state),
                                 std::move(index).value(), std::move(pool));
}

Result<PartialTuple> KeyEquivalentMaintainer::CheckInsert(
    size_t rel, const PartialTuple& tuple, MaintenanceStats* stats) const {
  return CheckInsertKeyEquivalent(state_.scheme(), pool_, index_, rel, tuple,
                                  stats);
}

Status KeyEquivalentMaintainer::Insert(size_t rel,
                                       const PartialTuple& tuple) {
  Result<PartialTuple> q = CheckInsert(rel, tuple);
  if (!q.ok()) return q.status();
  state_.mutable_relation(rel).AddUnique(tuple);
  return index_.InsertTuple(rel, tuple);
}

}  // namespace ird
