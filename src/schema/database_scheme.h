// DatabaseScheme: R = {R1, ..., Rn} over a shared Universe, with the set of
// key dependencies F generated from the declared keys (paper §2.1, §2.3).
//
// This is the central input object of the library: every recognition,
// maintenance and query-answering algorithm takes a DatabaseScheme.

#ifndef IRD_SCHEMA_DATABASE_SCHEME_H_
#define IRD_SCHEMA_DATABASE_SCHEME_H_

#include <memory>
#include <string>
#include <vector>

#include "base/attribute_set.h"
#include "base/status.h"
#include "base/universe.h"
#include "fd/fd_set.h"
#include "schema/relation_scheme.h"

namespace ird {

class DatabaseScheme {
 public:
  // Creates an empty scheme over `universe`. The universe may keep growing
  // (Intern) while relations are added.
  explicit DatabaseScheme(std::shared_ptr<Universe> universe)
      : universe_(std::move(universe)) {
    IRD_CHECK(universe_ != nullptr);
  }

  // Convenience: creates the scheme together with a fresh universe.
  static DatabaseScheme Create() {
    return DatabaseScheme(std::make_shared<Universe>());
  }

  DatabaseScheme(const DatabaseScheme&) = default;
  DatabaseScheme& operator=(const DatabaseScheme&) = default;
  DatabaseScheme(DatabaseScheme&&) = default;
  DatabaseScheme& operator=(DatabaseScheme&&) = default;

  // Adds a relation scheme; returns its index. Structural requirements
  // (nonempty attrs, keys nonempty subsets of attrs) are IRD_CHECKed;
  // semantic requirements (key minimality, coverage of U) are verified by
  // Validate().
  size_t AddRelation(RelationScheme scheme);

  // Shorthand used heavily by tests and examples: single-letter attributes.
  // AddRelation("R1", "HRC", {"HR"}) declares R1(HRC) with key HR.
  size_t AddRelation(std::string name, std::string_view attr_letters,
                     std::initializer_list<std::string_view> key_letters);

  const Universe& universe() const { return *universe_; }
  const std::shared_ptr<Universe>& universe_ptr() const { return universe_; }

  size_t size() const { return relations_.size(); }
  const RelationScheme& relation(size_t i) const {
    IRD_CHECK(i < relations_.size());
    return relations_[i];
  }
  const std::vector<RelationScheme>& relations() const { return relations_; }

  // Mutable access to a relation scheme, for in-place edits (key mutation
  // tooling, tests). Conservatively counts as a mutation: bumps the
  // revision and invalidates the FD cache even if the caller only reads.
  RelationScheme& mutable_relation(size_t i) {
    IRD_CHECK(i < relations_.size());
    cache_valid_ = false;
    ++revision_;
    return relations_[i];
  }

  // Monotone mutation counter: bumped by AddRelation and mutable_relation.
  // SchemeAnalysis (src/engine) keys its caches on this to detect staleness
  // without observing the scheme's contents.
  uint64_t revision() const { return revision_; }

  // Index of the relation named `name`.
  Result<size_t> FindRelation(std::string_view name) const;

  // The full set of key dependencies F = F1 ∪ ... ∪ Fn. Rebuilt on demand
  // after mutations; cached otherwise.
  const FdSet& key_dependencies() const;

  // Key dependencies embedded in the relations listed in `indices`.
  FdSet KeyDependenciesOf(const std::vector<size_t>& indices) const;

  // Key dependencies of all relations except `excluded` (the F - Fj of the
  // uniqueness condition, paper §2.7).
  FdSet KeyDependenciesExcept(size_t excluded) const;

  // Union of the attribute sets of the listed relations.
  AttributeSet UnionAttrs(const std::vector<size_t>& indices) const;

  // Union of all relation schemes (should equal U for a valid scheme).
  AttributeSet AllAttrs() const;

  // Every (relation index, key) pair, deduplicated by key set: if the same
  // attribute set is a key of several relations it appears once, tagged with
  // the first relation declaring it.
  std::vector<std::pair<size_t, AttributeSet>> AllKeys() const;

  // Semantic validation per the paper's definitions:
  //  - ∪ Ri = U;
  //  - every key is a nonempty subset of its scheme;
  //  - every declared key is a *candidate* key wrt the global F (minimal);
  //  - no two relations have identical attribute sets.
  Status Validate() const;

  // BCNF wrt the key dependencies (paper §2.3): for every nontrivial
  // X -> Y ∈ F+ embedded in some Ri, X is a superkey of Ri. Exponential in
  // max |Ri| (inherent for projected dependencies); guarded at 20 attrs.
  bool IsBcnf() const;

  // True iff R is lossless wrt F: CHASE_F(T_R) has a row of all dv's. Uses
  // the BMSU closure characterization (valid because F is embedded in R).
  bool IsLossless() const;

  std::string ToString() const;

 private:
  std::shared_ptr<Universe> universe_;
  std::vector<RelationScheme> relations_;
  uint64_t revision_ = 0;
  // Lazily built cache of key_dependencies().
  mutable FdSet cached_fds_;
  mutable bool cache_valid_ = false;
};

}  // namespace ird

#endif  // IRD_SCHEMA_DATABASE_SCHEME_H_
