// RelationScheme: a named subset of U together with its declared candidate
// keys (paper §2.1, §2.3). The paper's standing assumption is that a cover
// of the FDs is embedded in the database scheme as key dependencies, so keys
// are first-class declarations here, not derived objects.

#ifndef IRD_SCHEMA_RELATION_SCHEME_H_
#define IRD_SCHEMA_RELATION_SCHEME_H_

#include <string>
#include <vector>

#include "base/attribute_set.h"
#include "base/universe.h"
#include "fd/fd_set.h"

namespace ird {

struct RelationScheme {
  std::string name;
  AttributeSet attrs;
  // Declared candidate keys; each must be a nonempty subset of `attrs`.
  // Minimality is checked against the *global* key dependencies by
  // DatabaseScheme::Validate (the paper defines keys wrt the full F).
  std::vector<AttributeSet> keys;

  RelationScheme() = default;
  RelationScheme(std::string scheme_name, AttributeSet attributes,
                 std::vector<AttributeSet> candidate_keys)
      : name(std::move(scheme_name)),
        attrs(std::move(attributes)),
        keys(std::move(candidate_keys)) {}

  // The key dependencies embedded in this scheme: K -> attrs for each key
  // (paper §2.3: K -> A for every A ∈ R - K; we emit the set form).
  FdSet KeyDependencies() const {
    FdSet out;
    for (const AttributeSet& key : keys) {
      out.Add(key, attrs);
    }
    return out;
  }

  // True iff `x` contains some declared key.
  bool ContainsKey(const AttributeSet& x) const {
    for (const AttributeSet& key : keys) {
      if (key.IsSubsetOf(x)) return true;
    }
    return false;
  }

  std::string ToString(const Universe& universe) const;
};

}  // namespace ird

#endif  // IRD_SCHEMA_RELATION_SCHEME_H_
