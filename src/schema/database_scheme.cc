#include "schema/database_scheme.h"

#include <algorithm>
#include <unordered_set>

#include "fd/key_finder.h"

namespace ird {

std::string RelationScheme::ToString(const Universe& universe) const {
  std::string out = name + "(" + universe.Format(attrs) + ") keys ";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += universe.Format(keys[i]);
  }
  return out;
}

size_t DatabaseScheme::AddRelation(RelationScheme scheme) {
  IRD_CHECK_MSG(!scheme.attrs.Empty(), "relation scheme must be nonempty");
  IRD_CHECK_MSG(!scheme.keys.empty(),
                "relation scheme must declare at least one key");
  for (const AttributeSet& key : scheme.keys) {
    IRD_CHECK_MSG(!key.Empty(), "keys must be nonempty");
    IRD_CHECK_MSG(key.IsSubsetOf(scheme.attrs),
                  "key must be a subset of its scheme");
  }
  relations_.push_back(std::move(scheme));
  cache_valid_ = false;
  ++revision_;
  return relations_.size() - 1;
}

size_t DatabaseScheme::AddRelation(
    std::string name, std::string_view attr_letters,
    std::initializer_list<std::string_view> key_letters) {
  RelationScheme scheme;
  scheme.name = std::move(name);
  scheme.attrs = universe_->Chars(attr_letters);
  for (std::string_view key : key_letters) {
    scheme.keys.push_back(universe_->Chars(key));
  }
  return AddRelation(std::move(scheme));
}

Result<size_t> DatabaseScheme::FindRelation(std::string_view name) const {
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].name == name) return i;
  }
  return NotFound("no relation named '" + std::string(name) + "'");
}

const FdSet& DatabaseScheme::key_dependencies() const {
  if (!cache_valid_) {
    cached_fds_ = FdSet();
    for (const RelationScheme& r : relations_) {
      cached_fds_.AddAll(r.KeyDependencies());
    }
    cache_valid_ = true;
  }
  return cached_fds_;
}

FdSet DatabaseScheme::KeyDependenciesOf(
    const std::vector<size_t>& indices) const {
  FdSet out;
  for (size_t i : indices) {
    IRD_CHECK(i < relations_.size());
    out.AddAll(relations_[i].KeyDependencies());
  }
  return out;
}

FdSet DatabaseScheme::KeyDependenciesExcept(size_t excluded) const {
  FdSet out;
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (i != excluded) out.AddAll(relations_[i].KeyDependencies());
  }
  return out;
}

AttributeSet DatabaseScheme::UnionAttrs(
    const std::vector<size_t>& indices) const {
  AttributeSet out;
  for (size_t i : indices) {
    IRD_CHECK(i < relations_.size());
    out.UnionWith(relations_[i].attrs);
  }
  return out;
}

AttributeSet DatabaseScheme::AllAttrs() const {
  AttributeSet out;
  for (const RelationScheme& r : relations_) {
    out.UnionWith(r.attrs);
  }
  return out;
}

std::vector<std::pair<size_t, AttributeSet>> DatabaseScheme::AllKeys() const {
  std::vector<std::pair<size_t, AttributeSet>> out;
  std::unordered_set<AttributeSet, AttributeSetHash> seen;
  for (size_t i = 0; i < relations_.size(); ++i) {
    for (const AttributeSet& key : relations_[i].keys) {
      if (seen.insert(key).second) {
        out.emplace_back(i, key);
      }
    }
  }
  return out;
}

Status DatabaseScheme::Validate() const {
  if (relations_.empty()) {
    return InvalidArgument("database scheme has no relations");
  }
  if (AllAttrs() != universe_->All()) {
    return InvalidArgument(
        "the union of the relation schemes must equal the universe");
  }
  const FdSet& f = key_dependencies();
  for (size_t i = 0; i < relations_.size(); ++i) {
    const RelationScheme& r = relations_[i];
    for (const AttributeSet& key : r.keys) {
      // K -> r.attrs holds by construction; minimality must hold wrt the
      // *global* F (paper §2.3: "no proper subset of K has this property").
      bool minimal = true;
      key.ForEach([&](AttributeId a) {
        if (!minimal) return;
        AttributeSet smaller = key;
        smaller.Remove(a);
        if (!smaller.Empty() && f.Implies(smaller, r.attrs)) minimal = false;
      });
      if (!minimal) {
        return InvalidArgument("declared key " + universe_->Format(key) +
                               " of " + r.name +
                               " is not minimal wrt the key dependencies");
      }
    }
    for (size_t j = i + 1; j < relations_.size(); ++j) {
      if (relations_[j].attrs == r.attrs) {
        return InvalidArgument("relations " + r.name + " and " +
                               relations_[j].name +
                               " have identical attribute sets");
      }
    }
  }
  return OkStatus();
}

bool DatabaseScheme::IsBcnf() const {
  const FdSet& f = key_dependencies();
  for (const RelationScheme& r : relations_) {
    IRD_CHECK_MSG(r.attrs.Count() <= 20,
                  "BCNF test is exponential; scheme too large");
    // Enumerate X ⊆ r.attrs; a violation is a nontrivial embedded X -> A
    // with X not a superkey of r.
    std::vector<AttributeId> attrs = r.attrs.ToVector();
    size_t n = attrs.size();
    for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
      AttributeSet x;
      for (size_t b = 0; b < n; ++b) {
        if ((mask >> b) & 1) x.Add(attrs[b]);
      }
      AttributeSet closure = f.Closure(x);
      AttributeSet gained = closure.Intersect(r.attrs).Minus(x);
      if (!gained.Empty() && !r.attrs.IsSubsetOf(closure)) {
        return false;  // X -> gained embedded, X not a superkey of r
      }
    }
  }
  return true;
}

bool DatabaseScheme::IsLossless() const {
  // BMSU: in CHASE_F(T_R) the row for Ri is a dv exactly on Closure_F(Ri),
  // so R is lossless iff some Ri's closure covers U. Valid because F is
  // embedded in R by construction.
  const FdSet& f = key_dependencies();
  AttributeSet all = AllAttrs();
  for (const RelationScheme& r : relations_) {
    if (all.IsSubsetOf(f.Closure(r.attrs))) return true;
  }
  return false;
}

std::string DatabaseScheme::ToString() const {
  std::string out;
  for (const RelationScheme& r : relations_) {
    out += r.ToString(*universe_);
    out += "\n";
  }
  return out;
}

}  // namespace ird
